#include "net/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace cs::net {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool send_now(int fd, const SocketAddress& peer,
              const std::vector<std::uint8_t>& datagram) {
  sockaddr_in dst;
  to_sockaddr(peer, dst);
  const ssize_t sent =
      ::sendto(fd, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  return sent == static_cast<ssize_t>(datagram.size());
}

bool would_block() {
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS;
}

}  // namespace

int open_udp_socket(SocketAddress& addr) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0)
    throw Error("net: socket() failed for " + to_string(addr) + ": " +
                std::strerror(errno));
  sockaddr_in sa;
  to_sockaddr(addr, sa);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("net: bind(" + to_string(addr) +
                ") failed: " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw Error("net: getsockname(" + to_string(addr) + ") failed");
  }
  addr.port = ntohs(bound.sin_port);
  return fd;
}

SyncServer::SyncServer(SyncServerConfig config)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : steady_seconds),
      local_(config_.listen),
      loop_(config_.backend),
      sessions_(config_.session),
      recv_buf_(kMaxDatagramBytes) {
  fd_ = open_udp_socket(local_);
  loop_.add(fd_, /*want_read=*/true, /*want_write=*/false,
            [this](bool r, bool w) { on_socket(r, w); });
  next_sweep_ = now() + config_.sweep_period.sec;
}

SyncServer::~SyncServer() {
  stop();
  if (fd_ >= 0) ::close(fd_);
}

void SyncServer::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run_loop(); });
}

void SyncServer::stop() {
  if (!running_.exchange(false)) return;
  loop_.wake();
  if (thread_.joinable()) thread_.join();
}

void SyncServer::run_loop() {
  while (running_.load(std::memory_order_acquire)) step(50);
}

void SyncServer::step(int timeout_ms) {
  loop_.poll_once(timeout_ms);
  const double t = now();
  if (t >= next_sweep_) {
    sweep(t);
    next_sweep_ = t + config_.sweep_period.sec;
  }
}

void SyncServer::sweep(double t) {
  const std::size_t expired = sessions_.expire_idle(t);
  if (expired > 0)
    metrics_increment(config_.metrics, "runtime.net.sessions_expired",
                      expired);
  active_.store(sessions_.size(), std::memory_order_release);
  peak_.store(sessions_.peak_size(), std::memory_order_release);
  metrics_observe(config_.metrics, "runtime.net.sessions_active",
                  static_cast<double>(sessions_.size()));
}

void SyncServer::on_socket(bool readable, bool writable) {
  if (writable) flush_queues();
  if (!readable) return;
  // Drain everything the kernel has: edge-vs-level semantics differ
  // between the backends, so loop until EAGAIN either way.
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof src;
    const ssize_t got =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (got < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error: next wakeup retries
    }
    metrics_increment(config_.metrics, "runtime.net.datagrams_received");
    if (static_cast<std::size_t>(got) > recv_buf_.size()) {
      // MSG_TRUNC: the datagram was larger than the buffer — decoding the
      // torso would be garbage; drop and count.
      metrics_increment(config_.metrics, "runtime.net.recv_truncated");
      continue;
    }
    metrics_increment(config_.metrics, "runtime.net.bytes_received",
                      static_cast<std::uint64_t>(got));
    handle_datagram(from_sockaddr(src),
                    std::span<const std::uint8_t>(
                        recv_buf_.data(), static_cast<std::size_t>(got)));
  }
}

void SyncServer::handle_datagram(const SocketAddress& peer,
                                 std::span<const std::uint8_t> bytes) {
  const double t = now();
  Session* session = sessions_.find_or_create(peer, t);
  if (session == nullptr) {
    metrics_increment(config_.metrics, "runtime.net.sessions_refused");
    return;
  }
  const bool fresh = session->frames_in == 0;

  std::size_t frames = 0;
  bool closed = false;
  while (!bytes.empty()) {
    const DecodeResult result = decode_prefix(bytes);
    if (!result.ok()) {
      metrics_increment(config_.metrics, "runtime.net.decode_error");
      break;  // cannot resynchronize mid-datagram; drop the rest
    }
    ++frames;
    frames_in_.fetch_add(1, std::memory_order_release);
    ++session->frames_in;
    closed = handle_frame(*session, result.frame, t);
    bytes = bytes.subspan(result.consumed);
    // A Bye (or window reject) erased the session; later frames from the
    // same datagram would resurrect it half-initialized.
    if (closed) break;
  }
  metrics_increment(config_.metrics, "runtime.net.frames_received", frames);
  metrics_observe(config_.metrics, "runtime.net.frames_per_datagram",
                  static_cast<double>(frames));
  if (fresh) {
    if (frames == 0) {
      // The peer's first datagram carried no decodable frame: drop the
      // provisional session, so a garbage spray cannot fill the table.
      sessions_.close(peer);
    } else if (!closed) {
      metrics_increment(config_.metrics, "runtime.net.sessions_created");
    }
  }
}

bool SyncServer::handle_frame(Session& session, const Frame& frame,
                              double t) {
  sessions_.touch(session, t);
  const std::int64_t now_ticks = to_ticks(t);

  if (const auto* hello = std::get_if<Hello>(&frame.body)) {
    const std::int64_t skew = hello->clock_ticks - now_ticks;
    if (skew > config_.max_hello_skew_ticks ||
        skew < -config_.max_hello_skew_ticks) {
      // Outside the compact-stamp window contract: refuse loudly (metric)
      // rather than bank wrapped timestamps later.
      metrics_increment(config_.metrics, "runtime.net.hello_window_reject");
      sessions_.close(session.peer);
      return true;
    }
    session.state = Session::State::kEstablished;
    session.agent = hello->agent;
    session.hello_skew_ticks = skew;
    reply(session, Frame{HelloAck{config_.agent, now_ticks}});
    return false;
  }

  if (const auto* probe = std::get_if<ProbeBatch>(&frame.body)) {
    // Echo every sample with the shared arrival stamp; t_reply is this
    // frame's own send stamp, giving the prober a reverse-direction
    // observation for free.
    EchoBatch echo;
    echo.from = config_.agent;
    echo.to = probe->from;
    echo.eseq = session.echo_seq++;
    echo.t_reply24 = compress24(now_ticks);
    echo.samples.reserve(probe->samples.size());
    const std::uint32_t recv24 = compress24(now_ticks);
    for (const ProbeSample& s : probe->samples)
      echo.samples.push_back(EchoSample{s.seq, s.t_send24, recv24});
    reply(session, Frame{std::move(echo)});
    return false;
  }

  if (std::get_if<Bye>(&frame.body) != nullptr) {
    sessions_.close(session.peer);
    return true;
  }

  // Full / EchoBatch / HelloAck addressed at an echo server: tolerated
  // (version-1 clients may piggyback), counted, not answered.
  metrics_increment(config_.metrics, "runtime.net.frames_unhandled");
  return false;
}

void SyncServer::reply(Session& session, const Frame& frame) {
  std::vector<std::uint8_t> datagram = encode(frame);
  ++session.frames_out;
  // Fast path: the socket usually takes the reply synchronously.
  if (session.send_queue.empty() &&
      send_now(fd_, session.peer, datagram)) {
    metrics_increment(config_.metrics, "runtime.net.bytes_sent",
                      datagram.size());
    metrics_increment(config_.metrics, "runtime.net.frames_sent");
    metrics_increment(config_.metrics, "runtime.net.datagrams_sent");
    return;
  }
  if (!session.send_queue.empty() || would_block()) {
    if (!sessions_.enqueue(session, std::move(datagram))) {
      metrics_increment(config_.metrics,
                        "runtime.net.backpressure_dropped");
      return;
    }
    if (!write_interest_) {
      write_interest_ = true;
      loop_.modify(fd_, /*want_read=*/true, /*want_write=*/true);
    }
    return;
  }
  // Hard send error (peer gone, network down): counted, frame dropped.
  metrics_increment(config_.metrics, "runtime.net.send_error");
}

void SyncServer::flush_queues() {
  bool blocked = false;
  sessions_.for_each([&](Session& session) {
    while (!blocked && !session.send_queue.empty()) {
      const std::vector<std::uint8_t>& head = session.send_queue.front();
      if (send_now(fd_, session.peer, head)) {
        metrics_increment(config_.metrics, "runtime.net.bytes_sent",
                          head.size());
        metrics_increment(config_.metrics, "runtime.net.frames_sent");
        metrics_increment(config_.metrics, "runtime.net.datagrams_sent");
        sessions_.dequeue(session);
      } else if (would_block()) {
        blocked = true;
      } else {
        metrics_increment(config_.metrics, "runtime.net.send_error");
        sessions_.dequeue(session);  // unsendable: drop and move on
      }
    }
  });
  if (!blocked && sessions_.total_queued_bytes() == 0 && write_interest_) {
    write_interest_ = false;
    loop_.modify(fd_, /*want_read=*/true, /*want_write=*/false);
  }
}

}  // namespace cs::net
