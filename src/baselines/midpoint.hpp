// Midpoint offset estimation and the spanning-tree-midpoint baseline.
//
// From the views, the feasible set of the relative start offset
// Δ(p,q) = S_p - S_q of two neighbors is exactly the interval
// [-m̃ls(q,p), +m̃ls(p,q)] — shifting q within its maximal local shifts
// sweeps the perceived offset over precisely that range.  The minimax
// per-link estimate is the interval midpoint:
//
//   Δ̂(p,q) = ( m̃ls(p,q) - m̃ls(q,p) ) / 2.
//
// TreeMidpoint propagates these down a BFS tree.  It is "locally optimal,
// globally naive": on trees it matches the optimal pipeline, but it ignores
// cycles and cross-link structure, which is where SHIFTS wins (experiment
// E5 shows the gap opening as topologies gain cycles).
#pragma once

#include <span>

#include "delaymodel/assignment.hpp"
#include "delaymodel/link_stats.hpp"

namespace cs {

/// Midpoint estimate of S_p - S_q for a link {p, q}.  If one side's m̃ls is
/// infinite the finite endpoint is returned; if both are infinite, 0.
double midpoint_delta(const SystemModel& model, const LinkStats& stats,
                      ProcessorId p, ProcessorId q);

std::vector<double> tree_midpoint_corrections(const SystemModel& model,
                                              std::span<const View> views,
                                              ProcessorId root = 0);

}  // namespace cs
