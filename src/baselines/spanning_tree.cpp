#include "baselines/spanning_tree.hpp"

#include <cassert>
#include <deque>

namespace cs {

std::vector<double> tree_corrections(const Topology& topo, ProcessorId root,
                                     const DeltaEstimator& delta) {
  assert(root < topo.node_count);
  const auto adj = topo.adjacency();
  std::vector<double> x(topo.node_count, 0.0);
  std::vector<bool> seen(topo.node_count, false);
  std::deque<ProcessorId> queue{root};
  seen[root] = true;
  while (!queue.empty()) {
    const ProcessorId p = queue.front();
    queue.pop_front();
    for (ProcessorId q : adj[p]) {
      if (seen[q]) continue;
      seen[q] = true;
      // S_p - x_p == S_q - x_q  =>  x_q = x_p - (S_p - S_q).
      x[q] = x[p] - delta(p, q);
      queue.push_back(q);
    }
  }
  return x;
}

}  // namespace cs
