#include "baselines/midpoint.hpp"

#include "baselines/spanning_tree.hpp"

namespace cs {

double midpoint_delta(const SystemModel& model, const LinkStats& stats,
                      ProcessorId p, ProcessorId q) {
  const LinkConstraint& c = model.constraint(p, q);
  const DirectedStats& pq = stats.direction(p, q);
  const DirectedStats& qp = stats.direction(q, p);
  const ExtReal hi = c.mls(p, pq, qp);   // m̃ls(p,q): upper end of Δ
  const ExtReal lo = -c.mls(q, qp, pq);  // -m̃ls(q,p): lower end of Δ
  if (hi.is_finite() && lo.is_finite())
    return (hi.finite() + lo.finite()) / 2.0;
  if (hi.is_finite()) return hi.finite();
  if (lo.is_finite()) return lo.finite();
  return 0.0;
}

std::vector<double> tree_midpoint_corrections(const SystemModel& model,
                                              std::span<const View> views,
                                              ProcessorId root) {
  const LinkStats stats = LinkStats::estimated_from_views(views);
  const DeltaEstimator delta = [&](ProcessorId p, ProcessorId q) {
    return midpoint_delta(model, stats, p, q);
  };
  return tree_corrections(model.topology(), root, delta);
}

}  // namespace cs
