// Lundelius–Lynch averaging baseline (complete graphs).
//
// [Lundelius & Lynch 84] synchronize a complete graph of n processors with
// known delay bounds to worst-case precision (1 - 1/n)(ub - lb), which they
// prove worst-case optimal for that setting.  Their algorithm averages the
// per-peer midpoint offset estimates:
//
//   x_p = (1/n) * Σ_q Δ̂(p, q),   Δ̂ the per-link midpoint (midpoint.hpp).
//
// The contrast with SHIFTS is the paper's headline: worst-case-optimal
// algorithms leave precision on the table in favorable instances, while the
// per-instance-optimal pipeline adapts (experiments E5/E6; the worst-case
// bound itself is checked as a property test).
#pragma once

#include <span>

#include "delaymodel/assignment.hpp"

namespace cs {

/// Requires a complete topology (throws InvalidAssumption otherwise).
std::vector<double> lundelius_lynch_corrections(const SystemModel& model,
                                                std::span<const View> views);

}  // namespace cs
