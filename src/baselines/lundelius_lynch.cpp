#include "baselines/lundelius_lynch.hpp"

#include "baselines/midpoint.hpp"
#include "common/error.hpp"

namespace cs {

std::vector<double> lundelius_lynch_corrections(const SystemModel& model,
                                                std::span<const View> views) {
  const std::size_t n = model.processor_count();
  if (model.topology().link_count() != n * (n - 1) / 2)
    throw InvalidAssumption(
        "lundelius_lynch baseline requires a complete topology");

  const LinkStats stats = LinkStats::estimated_from_views(views);
  std::vector<double> x(n, 0.0);
  for (ProcessorId p = 0; p < n; ++p) {
    double sum = 0.0;
    for (ProcessorId q = 0; q < n; ++q)
      if (q != p) sum += midpoint_delta(model, stats, p, q);
    x[p] = sum / static_cast<double>(n);
  }
  return x;
}

}  // namespace cs
