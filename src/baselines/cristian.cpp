#include "baselines/cristian.hpp"

#include "baselines/spanning_tree.hpp"
#include "common/error.hpp"
#include "delaymodel/link_stats.hpp"

namespace cs {

std::vector<double> cristian_corrections(const SystemModel& model,
                                         std::span<const View> views,
                                         ProcessorId root) {
  const LinkStats stats = LinkStats::estimated_from_views(views);
  const DeltaEstimator delta = [&](ProcessorId p, ProcessorId q) {
    const DirectedStats& pq = stats.direction(p, q);
    const DirectedStats& qp = stats.direction(q, p);
    if (pq.count == 0 || qp.count == 0)
      throw InvalidExecution(
          "cristian baseline needs traffic in both directions of every "
          "tree link");
    return (pq.dmin.finite() - qp.dmin.finite()) / 2.0;
  };
  return tree_corrections(model.topology(), root, delta);
}

}  // namespace cs
