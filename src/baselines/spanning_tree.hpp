// Shared scaffolding for tree-propagation baselines.
//
// Several classical algorithms share one shape: estimate the relative start
// offset Δ(p,q) = S_p - S_q per link, then propagate corrections down a BFS
// spanning tree (x_root = 0, x_child = x_parent - Δ(parent, child)).  The
// baselines differ only in the per-link Δ estimator.
#pragma once

#include <functional>
#include <vector>

#include "graph/topology.hpp"
#include "model/ids.hpp"

namespace cs {

/// Δ estimator for a directed pair (p, q) sharing a link: an estimate of
/// S_p - S_q from whatever that baseline measures.
using DeltaEstimator = std::function<double(ProcessorId p, ProcessorId q)>;

/// BFS-tree correction propagation.  Disconnected nodes (impossible for
/// connected topologies) keep correction 0.
std::vector<double> tree_corrections(const Topology& topo, ProcessorId root,
                                     const DeltaEstimator& delta);

}  // namespace cs
