// Cristian/NTP-style baseline.
//
// The estimator practitioners actually deploy [Cristian 89; Mills, NTPv2]:
// assume the fastest observed delay in each direction of a link is about
// symmetric, estimate the peer offset as half the difference of the two
// minimal one-way estimated delays, and propagate over a spanning tree.
//
//   Δ̂(p,q) = ( d̃min(p,q) - d̃min(q,p) ) / 2   (≈ S_p - S_q when the fastest
//                                              delays in both directions
//                                              happen to match)
//
// It uses no declared bounds at all, so it is well-defined under every
// delay model — and it is exactly the algorithm the optimal pipeline is
// benchmarked against in experiments E5/E6.  Its error on a link is half
// the asymmetry of the realized fastest delays, which the optimal
// algorithm provably never exceeds (and often beats by exploiting bounds
// and cross-link structure).
#pragma once

#include <span>

#include "delaymodel/assignment.hpp"

namespace cs {

/// Throws InvalidExecution if some tree link carries no traffic in one of
/// the two directions (the estimator is undefined there).
std::vector<double> cristian_corrections(const SystemModel& model,
                                         std::span<const View> views,
                                         ProcessorId root = 0);

}  // namespace cs
