#include "baselines/hmm.hpp"

#include <unordered_map>

#include "core/local_estimates.hpp"
#include "model/pairing.hpp"

namespace cs {

SyncOutcome hmm_one_shot(const SystemModel& model, std::span<const View> views,
                         const SyncOptions& options) {
  // Keep, per directed pair, only the earliest-sent message.
  std::unordered_map<std::uint64_t, PairedMessage> first;
  for (const PairedMessage& m : pair_messages(views)) {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(m.from) << 32) | m.to;
    const auto it = first.find(k);
    if (it == first.end() || m.send_clock < it->second.send_clock)
      first.insert_or_assign(k, m);
  }
  LinkStats stats;
  for (const auto& [k, m] : first)
    stats.add(m.from, m.to, m.estimated_delay().sec);

  SyncOutcome out;
  out.mls_graph = mls_graph_from_stats(model, stats);
  out.ms_estimates = global_shift_estimates(out.mls_graph, options.apsp);
  ShiftsResult shifts = compute_shifts(out.ms_estimates, options.root);
  out.corrections = std::move(shifts.corrections);
  out.optimal_precision = shifts.a_max;
  out.components = std::move(shifts.components);
  out.component_precision = std::move(shifts.component_a_max);
  return out;
}

}  // namespace cs
