// Halpern–Megiddo–Munshi one-shot baseline.
//
// The paper situates [3] as the special case of its framework "where
// exactly one message is sent on each link and upper and lower bounds on
// delays are known".  This baseline realizes that case on arbitrary views:
// it discards all but the *first* message per direction of every link and
// runs the full optimal pipeline on what remains.  Comparing it against the
// all-messages pipeline isolates the value of per-instance adaptivity —
// extra probes tighten d̃min/d̃max and hence Ã^max (experiments E2/E5).
#pragma once

#include <span>

#include "core/synchronizer.hpp"

namespace cs {

/// Optimal corrections computed from the one-message-per-direction
/// restriction of the views.  The returned outcome's optimal_precision is
/// optimal *for the restricted information*, an upper bound on the full
/// pipeline's.
SyncOutcome hmm_one_shot(const SystemModel& model, std::span<const View> views,
                         const SyncOptions& options = {});

}  // namespace cs
