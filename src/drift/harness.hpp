// The drift trial: one drifting instance, end to end.
//
// Shared by the cs_lab drift axis and bench_e17_drift so both measure the
// same thing: simulate a ping-pong probe run under an oscillator draw,
// re-synchronize at every scheduled epoch boundary using the detrending
// rate estimator (rate_estimator.hpp), and evaluate the ground-truth
// corrected spread inside each epoch's validity interval against the
// drift-adjusted bound (scheduler.hpp).
//
// Timeline of a trial with horizon H and re-sync interval I > 0:
//
//   0 ───warmup───[probes every I/8]──────────────────────────── H
//                 T₁=I        T₂=2I        T₃=3I  ...
//                 └─ epoch 1 ─┘└─ epoch 2 ─┘
//
// Epoch k's corrections come from the traffic window [T_k - I, T_k),
// detrended and re-anchored at T_k, and are held until T_{k+1}; the
// realized spread is evaluated at the middle and the end of that hold
// interval.  With I = 0 (re-sync disabled) there is a single sync at
// T₁ = H/4 over the cumulative prefix, held all the way to H — the
// configuration whose growing spread demonstrates why re-sync is not
// optional under drift.
//
// Actual delays are drawn uniformly from the *middle quarter* of the
// declared [lb, ub] band (config.sample_lo/hi; the E9b discipline): the
// declared slack on each side absorbs the estimator's re-anchoring error,
// so fit noise can never make the estimates physically inconsistent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/synchronizer.hpp"
#include "drift/oscillator.hpp"
#include "drift/rate_estimator.hpp"
#include "sim/simulator.hpp"

namespace cs::drift {

struct DriftTrialConfig {
  OscillatorSpec oscillator;
  /// Re-sync interval I in clock seconds; 0 disables re-sync (single
  /// epoch at horizon/4 over the cumulative prefix).
  double resync{0.0};
  /// Evaluation horizon H in seconds (> 0; must exceed the first
  /// boundary).
  double horizon{0.0};
  /// Maximum start skew the offsets were drawn from (sets the probe
  /// warmup, which must outlast it).
  double skew{0.25};
  /// Uniform actual-delay range, both directions of every link.  Keep it
  /// strictly inside the declared constraint band.
  double sample_lo{0.0};
  double sample_hi{0.0};
  std::uint64_t sim_seed{1};
  std::uint64_t drift_seed{2};
  /// One per processor (required).
  std::vector<Duration> start_offsets;
  std::size_t sync_threads{1};
  double tolerance{1e-9};
  /// 0 = sized automatically from the probe schedule.
  std::size_t max_events{0};
  Metrics* metrics{nullptr};
};

struct DriftEpochRow {
  double boundary{0.0};    ///< T_k (clock seconds)
  double claimed{0.0};     ///< Ã^max of the drift-adjusted estimates
  double guaranteed{0.0};  ///< Thm 4.6 guarantee recomputed from m̃s
  double bound{0.0};       ///< drift_adjusted_bound(claimed, ρ, W, I)
  double realized{0.0};    ///< max ground-truth spread over the hold interval
  bool sound{false};       ///< realized <= bound + tolerance
};

struct DriftTrialResult {
  bool ok{false};
  std::string failure;
  bool sound{false};       ///< every epoch sound
  std::size_t epochs{0};
  double window{0.0};      ///< effective estimation window W
  double claimed_max{0.0};
  double guaranteed_max{0.0};
  double thm46_gap{0.0};   ///< max per-epoch |guaranteed - claimed|
  double bound_max{0.0};
  double realized_max{0.0};
  std::size_t directions_fitted{0};
  std::size_t directions_raw{0};
  double max_abs_slope{0.0};
  std::size_t events{0};
  std::size_t delivered{0};
  std::size_t dropped{0};
  std::vector<DriftEpochRow> rows;
};

/// Run one drift trial.  Throws nothing: failures land in result.failure
/// with ok == false (an epoch whose window carries no usable traffic is a
/// failure, not a silent skip).
DriftTrialResult run_drift_trial(const SystemModel& model,
                                 const DriftTrialConfig& config);

}  // namespace cs::drift
