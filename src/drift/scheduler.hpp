// Re-synchronization budget arithmetic (docs/DRIFT.md).
//
// Between corrections, two clocks inside the declared oscillator band
// [1 - ρ, 1 + ρ] can diverge at up to 2ρ seconds per second.  That single
// inequality yields all the scheduling math:
//
//   drift_slack(ρ, Δt)        = 2ρ·Δt        worst-case extra spread after Δt
//   max_resync_interval(ρ, s) = s / (2ρ)     longest gap a slack budget s allows
//   drift_adjusted_bound      = Ã^max + 2ρ·(W + I)
//
// The last is the soundness bound a drifting deployment can actually
// promise: the instance-optimal Ã^max computed from drift-adjusted
// estimates (which already cost a re-anchoring error covered by the
// estimation window W), plus the divergence accumulated over a declared
// re-sync interval I.  With re-sync disabled there is no interval term —
// and no bound that holds past the first few multiples of W, which is the
// violation the drift campaigns demonstrate.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace cs::drift {

/// Worst-case extra pairwise spread accumulated over `elapsed` seconds by
/// clocks inside the declared band: 2ρ·elapsed (never negative).
double drift_slack(double rho, double elapsed);

/// Longest re-sync interval a slack budget allows: slack / (2ρ).
/// +infinity when rho <= 0 (drift-free clocks never need re-sync).
double max_resync_interval(double rho, double slack);

/// The precision a drifting deployment promises for corrections computed
/// from a window of width `window` and held for `interval` seconds.
double drift_adjusted_bound(double claimed, double rho, double window,
                            double interval);

/// A drift budget: declared oscillator band ρ plus the precision slack the
/// deployment is willing to spend on divergence between epochs.
struct DriftBudget {
  double rho{0.0};
  double slack{0.0};

  bool active() const { return rho > 0.0 && slack > 0.0; }
};

struct ResyncPlan {
  Duration period{0.0};
  std::size_t epochs{1};
  /// True when the requested period exceeded the budget's maximum
  /// interval and was clamped down (with epochs stretched to keep the
  /// total coverage).
  bool clamped{false};
};

/// Fit a requested epoch schedule to the budget: the period is clamped to
/// max_resync_interval and the epoch count stretched so period·epochs
/// still covers the requested span.  An inactive budget returns the
/// request unchanged.
ResyncPlan plan_resync(const DriftBudget& budget, Duration requested_period,
                       std::size_t requested_epochs);

}  // namespace cs::drift
