// Oscillator models: where clock drift comes from.
//
// The paper assumes drift-free clocks (rate exactly 1); footnote 1 waves
// real drift away via "periodic re-synchronization".  This subsystem makes
// that story concrete (docs/DRIFT.md).  Two oscillator models, following
// the INET clock-drift taxonomy:
//
//   constant — each processor draws a rate uniformly in [1 - ρ, 1 + ρ]
//              once and keeps it forever (a mis-trimmed crystal);
//   walk     — the rate takes a bounded random walk inside [1 - ρ, 1 + ρ],
//              stepping by uniform(-σ, σ) every `interval` real seconds
//              and reflecting at the band edges (thermal wander).
//
// Draws are deterministic: processor p's trajectory comes from
// Rng(seed).split(p), so it depends only on (seed, p) — adding processors
// or reordering draws never perturbs an existing clock, mirroring the
// per-link RNG-stream discipline of the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace cs::drift {

struct OscillatorSpec {
  enum class Kind { kNone, kConstant, kRandomWalk };

  Kind kind{Kind::kNone};
  /// Drift budget ρ in parts-per-million: every rate stays in
  /// [1 - ρ, 1 + ρ].  This is the *declared* bound the scheduler and the
  /// drift-adjusted precision bound are allowed to rely on.
  double ppm{0.0};
  /// Walk only: per-step rate change bound σ, in ppm.
  double step_ppm{0.0};
  /// Walk only: real seconds between rate steps (> 0).
  double interval{0.0};
  /// Walk only: schedule length in real seconds; the last rate extends
  /// beyond it.
  double horizon{0.0};

  bool drifting() const { return kind != Kind::kNone && ppm > 0.0; }
  /// The budget as a dimensionless rate offset (|rate - 1| <= rho()).
  double rho() const { return ppm * 1e-6; }
  std::string describe() const;
};

/// A concrete drift draw for n processors, ready to plug into the
/// simulator.  For constant oscillators only `rates` is populated; for the
/// random walk each processor also gets a RateSchedule (whose first
/// segment's rate equals rates[p]).
struct DriftAssignment {
  std::vector<double> rates;
  std::vector<std::shared_ptr<const RateSchedule>> schedules;
  /// Declared budget ρ the draw respects; 0 = drift-free.
  double rho{0.0};

  bool drifting() const { return rho > 0.0; }

  /// Install the draw into simulator options.  Drifting draws also clear
  /// check_admissible: the model-side real-time reconstruction assumes
  /// rate 1 (see SimOptions::clock_rates).
  void apply(SimOptions& options) const;

  /// Ground-truth clock for processor p starting at the given offset —
  /// what an outside observer evaluating realized precision should read.
  Clock clock(std::size_t p, Duration start_offset) const;
};

/// Draw oscillators for n processors.  Pure function of (spec, n, seed).
DriftAssignment draw_oscillators(const OscillatorSpec& spec, std::size_t n,
                                 std::uint64_t seed);

}  // namespace cs::drift
