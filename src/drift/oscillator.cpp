#include "drift/oscillator.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cs::drift {

std::string OscillatorSpec::describe() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kConstant:
      return "const " + std::to_string(ppm) + "ppm";
    case Kind::kRandomWalk:
      return "walk " + std::to_string(ppm) + "ppm step " +
             std::to_string(step_ppm) + "ppm";
  }
  return "?";
}

void DriftAssignment::apply(SimOptions& options) const {
  options.clock_rates = rates;
  options.clock_schedules = schedules;
  if (drifting()) options.check_admissible = false;
}

Clock DriftAssignment::clock(std::size_t p, Duration start_offset) const {
  const RealTime start = RealTime{} + start_offset;
  if (!schedules.empty() && schedules[p] != nullptr)
    return Clock(start, schedules[p]);
  return Clock(start, rates.empty() ? 1.0 : rates[p]);
}

DriftAssignment draw_oscillators(const OscillatorSpec& spec, std::size_t n,
                                 std::uint64_t seed) {
  DriftAssignment out;
  out.rates.assign(n, 1.0);
  if (!spec.drifting()) return out;
  out.rho = spec.rho();

  const double lo = 1.0 - out.rho;
  const double hi = 1.0 + out.rho;
  const Rng master(seed);

  if (spec.kind == OscillatorSpec::Kind::kConstant) {
    for (std::size_t p = 0; p < n; ++p) {
      Rng rng = master.split(p);
      out.rates[p] = 1.0 + rng.uniform(-out.rho, out.rho);
    }
    return out;
  }

  if (spec.interval <= 0.0)
    throw Error("random-walk oscillator needs a positive step interval");
  if (spec.horizon <= 0.0)
    throw Error("random-walk oscillator needs a positive horizon");
  const double step = spec.step_ppm * 1e-6;
  if (step <= 0.0)
    throw Error("random-walk oscillator needs a positive step_ppm");

  out.schedules.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    Rng rng = master.split(p);
    double rate = 1.0 + rng.uniform(-out.rho, out.rho);
    std::vector<RateSegment> segments;
    for (double t = 0.0; t < spec.horizon; t += spec.interval) {
      segments.push_back(RateSegment{t, rate});
      rate += rng.uniform(-step, step);
      // Reflect at the band edges, then clamp (a step larger than the
      // band could still overshoot after one reflection).
      if (rate > hi) rate = 2.0 * hi - rate;
      if (rate < lo) rate = 2.0 * lo - rate;
      rate = std::clamp(rate, lo, hi);
    }
    out.rates[p] = segments.front().rate;
    out.schedules[p] =
        std::make_shared<const RateSchedule>(std::move(segments));
  }
  return out;
}

}  // namespace cs::drift
