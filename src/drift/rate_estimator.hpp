// Per-link rate estimation: absorbing drift into the d̃ extremes.
//
// Under drift-free clocks the estimated delay d̃(m) = T_recv - T_send is
// the actual delay shifted by a constant (the S-terms telescope, Lemma
// 6.1), so its per-direction extremes are a sufficient statistic.  Under
// drift the shift is no longer constant: for rates r_p, r_q it gains a
// term that grows ~ (r_q - r_p) · t with *absolute* time, so raw extremes
// over any long window are smeared by the full elapsed time, not the
// window width — naive windowed estimation gets worse, not better, as the
// run proceeds.
//
// The fix (docs/DRIFT.md): per direction, regress d̃ against the sender's
// send clock.  The fitted slope estimates the pairwise rate difference
// r_q - r_p; detrending by it leaves residuals bounded by the actual delay
// variation plus the rate wander over the window; re-anchoring the
// residual extremes on the fitted line *at the epoch boundary T* yields
// drift-adjusted d̃min/d̃max "as of T" that feed GLOBAL ESTIMATES through
// the ordinary stats kernel (mls_graph_from_stats).
//
// The slope is clamped to the declared budget (|slope| <= 2ρ): a rate
// difference larger than 2ρ is physically impossible under the oscillator
// band, and the clamp stops sampling noise in short windows from
// extrapolating wildly.  A configurable guard widens the re-anchored
// extremes so residual fit error cannot make the estimates tighter than
// the truth (which would poison GLOBAL ESTIMATES with a negative cycle).
#pragma once

#include <cstddef>
#include <span>

#include "delaymodel/assignment.hpp"
#include "delaymodel/link_stats.hpp"

namespace cs::drift {

/// Ordinary least squares of estimated delay d̃ against send clock time.
struct RateFit {
  std::size_t count{0};
  /// d(d̃)/d(send clock) — estimates the pairwise rate difference.
  double slope{0.0};
  double intercept{0.0};
  /// Extremes of d̃ - predict(send) over the fitted observations.
  double residual_min{0.0};
  double residual_max{0.0};

  bool usable() const { return count >= 2; }
  double predict(double send) const { return intercept + slope * send; }
};

/// Fit over the given observations (no filtering, no clamping).  With
/// fewer than two points, or zero send-time spread, the slope is 0 and the
/// intercept is the mean delay.
RateFit fit_rate(std::span<const TimedObs> obs);

struct DriftWindowOptions {
  /// Epoch boundary T (clock time): only messages whose send *and*
  /// receive stamps precede T are visible, and the extremes are
  /// re-anchored at T.
  double boundary{0.0};
  /// Sliding window width W: only observations received in [T - W, T).
  /// 0 = cumulative (every observation before T).
  double window{0.0};
  /// Clamp |slope| to this (use 2ρ, the maximal pairwise rate
  /// difference under the declared budget).  0 = unclamped.
  double max_slope{0.0};
  /// Widen the re-anchored extremes by this much each way, so fit error
  /// cannot make the estimates tighter than physical truth.
  double guard{0.0};
  /// Directions with fewer observations fall back to raw extremes.
  std::size_t min_count{2};
};

/// Drift-adjusted extremes for one direction at the epoch boundary.
/// Empty input (after windowing) yields an empty DirectedStats (+inf/-inf,
/// count 0), i.e. edge absence downstream.
DirectedStats drift_adjusted_stats(std::span<const TimedObs> obs,
                                   const DriftWindowOptions& options);

/// Diagnostics of one drift-adjusted estimation pass.
struct DriftFitSummary {
  std::size_t directions_fitted{0};  ///< detrended by a usable rate fit
  std::size_t directions_raw{0};     ///< fell back to raw extremes
  double max_abs_slope{0.0};         ///< largest clamped |slope| seen
};

/// The drift-aware replacement for LinkStats::estimated_from_views: both
/// orientations of every topology link, windowed, detrended and
/// re-anchored at options.boundary.  Feed the result to
/// mls_graph_from_stats + synchronize_mls.
LinkStats drift_adjusted_link_stats(const SystemModel& model,
                                    const LinkTraffic& traffic,
                                    const DriftWindowOptions& options,
                                    DriftFitSummary* summary = nullptr);

}  // namespace cs::drift
