#include "drift/harness.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "core/local_estimates.hpp"
#include "core/precision.hpp"
#include "drift/scheduler.hpp"
#include "proto/ping_pong.hpp"
#include "sim/clock.hpp"

namespace cs::drift {
namespace {

/// Ground-truth corrected spread at real time t: max pairwise difference
/// of clock_p(t) + x_p, read off the oscillator clocks directly.
double spread_at(double t, std::span<const Clock> clocks,
                 std::span<const double> corrections) {
  double lo = 0.0, hi = 0.0;
  for (std::size_t p = 0; p < clocks.size(); ++p) {
    const double c = clocks[p].at(RealTime{t}).sec + corrections[p];
    if (p == 0) {
      lo = hi = c;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  return hi - lo;
}

}  // namespace

DriftTrialResult run_drift_trial(const SystemModel& model,
                                 const DriftTrialConfig& config) {
  DriftTrialResult result;
  try {
    const std::size_t n = model.processor_count();
    if (config.start_offsets.size() != n)
      throw Error("drift trial: need one start offset per processor");
    if (config.horizon <= 0.0)
      throw Error("drift trial: horizon must be positive");
    if (!(config.sample_lo > 0.0) || config.sample_hi < config.sample_lo)
      throw Error("drift trial: need 0 < sample_lo <= sample_hi");

    const double horizon = config.horizon;
    const double interval = config.resync;
    const double first_boundary = interval > 0.0 ? interval : horizon / 4.0;
    const double warmup = config.skew + 0.1;
    if (first_boundary <= warmup)
      throw Error(
          "drift trial: first epoch boundary must exceed the probe warmup");
    const double spacing = first_boundary / 8.0;
    const auto rounds = static_cast<std::size_t>(
        std::ceil((horizon - warmup) / spacing)) + 1;

    OscillatorSpec osc = config.oscillator;
    if (osc.kind == OscillatorSpec::Kind::kRandomWalk) {
      if (osc.interval <= 0.0) osc.interval = horizon / 64.0;
      if (osc.horizon <= 0.0) osc.horizon = horizon;
    }
    const DriftAssignment assignment =
        draw_oscillators(osc, n, config.drift_seed);
    const double rho = assignment.rho;

    SimOptions opts;
    opts.start_offsets = config.start_offsets;
    opts.seed = config.sim_seed;
    opts.metrics = config.metrics;
    opts.max_events =
        config.max_events != 0
            ? config.max_events
            : std::max<std::size_t>(
                  1'000'000, 64 * (rounds + 1) *
                                 (model.topology().link_count() + n));
    assignment.apply(opts);

    std::vector<std::unique_ptr<DelaySampler>> samplers;
    samplers.reserve(model.topology().link_count());
    for (std::size_t i = 0; i < model.topology().link_count(); ++i)
      samplers.push_back(make_uniform_sampler(config.sample_lo,
                                              config.sample_hi,
                                              config.sample_lo,
                                              config.sample_hi));

    PingPongParams probes;
    probes.warmup = Duration{warmup};
    probes.spacing = Duration{spacing};
    probes.rounds = rounds;
    const SimResult sim =
        simulate(model, make_ping_pong(probes), std::move(samplers), opts);
    result.delivered = sim.delivered_messages;
    result.dropped = sim.fault_dropped_messages;
    result.events = sim.delivered_messages + sim.fired_timers;

    const std::vector<View> views = sim.execution.views();
    const LinkTraffic traffic =
        LinkTraffic::estimated_from_views(views, MatchPolicy::kDropOrphans);

    std::vector<Clock> clocks;
    clocks.reserve(n);
    for (std::size_t p = 0; p < n; ++p)
      clocks.push_back(assignment.clock(p, config.start_offsets[p]));

    std::vector<double> boundaries;
    if (interval > 0.0) {
      for (double t = interval; t < horizon - 1e-9; t += interval)
        boundaries.push_back(t);
      if (boundaries.empty())
        throw Error("drift trial: horizon must exceed the re-sync interval");
    } else {
      boundaries.push_back(first_boundary);
    }

    // The effective estimation window W: the sliding window under re-sync,
    // the whole prefix before the single sync without.  The declared
    // interval allowance is I itself — or 0 with re-sync disabled, which
    // is exactly the promise the no-resync arm fails to keep.
    const double window = interval > 0.0 ? interval : 0.0;
    const double window_eff = interval > 0.0 ? interval : first_boundary;
    const double allowance = interval > 0.0 ? interval : 0.0;
    result.window = window_eff;

    SyncOptions sync_opts;
    sync_opts.threads = config.sync_threads;
    sync_opts.metrics = config.metrics;

    bool all_sound = true;
    for (std::size_t k = 0; k < boundaries.size(); ++k) {
      const double boundary = boundaries[k];
      DriftWindowOptions win;
      win.boundary = boundary;
      win.window = window;
      win.max_slope = 2.0 * rho;
      win.guard = rho * window_eff;
      DriftFitSummary fits;
      const LinkStats stats =
          drift_adjusted_link_stats(model, traffic, win, &fits);
      result.directions_fitted += fits.directions_fitted;
      result.directions_raw += fits.directions_raw;
      result.max_abs_slope =
          std::max(result.max_abs_slope, fits.max_abs_slope);

      const SyncOutcome out =
          synchronize_mls(mls_graph_from_stats(model, stats), sync_opts);
      if (!out.bounded())
        throw Error("drift trial: epoch at T=" + std::to_string(boundary) +
                    " is unbounded (no usable traffic in the window)");

      DriftEpochRow row;
      row.boundary = boundary;
      row.claimed = out.optimal_precision.finite();
      row.guaranteed =
          guaranteed_precision(out.ms_estimates, out.corrections).finite();
      row.bound =
          drift_adjusted_bound(row.claimed, rho, window_eff, allowance);

      // Evaluate the ground truth where these corrections are live:
      // [T_k, T_{k+1}) under re-sync, [T_1, H] without.
      const double hold_end =
          k + 1 < boundaries.size() ? boundaries[k + 1] : horizon;
      const double eval[2] = {(boundary + hold_end) / 2.0, hold_end};
      row.realized = 0.0;
      for (double t : eval)
        row.realized =
            std::max(row.realized, spread_at(t, clocks, out.corrections));
      row.sound = row.realized <= row.bound + config.tolerance;
      all_sound = all_sound && row.sound;

      result.claimed_max = std::max(result.claimed_max, row.claimed);
      result.guaranteed_max = std::max(result.guaranteed_max, row.guaranteed);
      result.thm46_gap = std::max(
          result.thm46_gap, std::abs(row.guaranteed - row.claimed));
      result.bound_max = std::max(result.bound_max, row.bound);
      result.realized_max = std::max(result.realized_max, row.realized);
      result.rows.push_back(row);
    }
    result.epochs = result.rows.size();
    result.sound = all_sound;
    result.ok = true;
  } catch (const Error& e) {
    result.ok = false;
    result.failure = e.what();
  }
  return result;
}

}  // namespace cs::drift
