#include "drift/rate_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cs::drift {

RateFit fit_rate(std::span<const TimedObs> obs) {
  RateFit fit;
  fit.count = obs.size();
  if (obs.empty()) return fit;

  double mean_s = 0.0, mean_d = 0.0;
  for (const TimedObs& o : obs) {
    mean_s += o.send;
    mean_d += o.delay;
  }
  mean_s /= static_cast<double>(obs.size());
  mean_d /= static_cast<double>(obs.size());

  double sxx = 0.0, sxd = 0.0;
  for (const TimedObs& o : obs) {
    const double ds = o.send - mean_s;
    sxx += ds * ds;
    sxd += ds * (o.delay - mean_d);
  }
  fit.slope = sxx > 0.0 ? sxd / sxx : 0.0;
  fit.intercept = mean_d - fit.slope * mean_s;

  bool first = true;
  for (const TimedObs& o : obs) {
    const double r = o.delay - fit.predict(o.send);
    if (first) {
      fit.residual_min = fit.residual_max = r;
      first = false;
    } else {
      fit.residual_min = std::min(fit.residual_min, r);
      fit.residual_max = std::max(fit.residual_max, r);
    }
  }
  return fit;
}

namespace {

/// Re-fit the intercept and residual band around a clamped slope (the
/// line must still pass through the centroid, and the band must still
/// cover every observation).
RateFit refit_with_slope(std::span<const TimedObs> obs, double slope) {
  RateFit fit;
  fit.count = obs.size();
  fit.slope = slope;
  double mean_s = 0.0, mean_d = 0.0;
  for (const TimedObs& o : obs) {
    mean_s += o.send;
    mean_d += o.delay;
  }
  mean_s /= static_cast<double>(obs.size());
  mean_d /= static_cast<double>(obs.size());
  fit.intercept = mean_d - slope * mean_s;
  bool first = true;
  for (const TimedObs& o : obs) {
    const double r = o.delay - fit.predict(o.send);
    if (first) {
      fit.residual_min = fit.residual_max = r;
      first = false;
    } else {
      fit.residual_min = std::min(fit.residual_min, r);
      fit.residual_max = std::max(fit.residual_max, r);
    }
  }
  return fit;
}

struct DirectionResult {
  DirectedStats stats;
  bool fitted{false};
  double abs_slope{0.0};
};

DirectionResult adjust_direction(std::span<const TimedObs> obs,
                                 const DriftWindowOptions& options) {
  DirectionResult out;
  // Window by the epoch cut: a message is visible iff both its send stamp
  // and its receive stamp (= send + d̃, both clock readings) precede the
  // boundary; the sliding window keys on the receive stamp.
  std::vector<TimedObs> in_window;
  in_window.reserve(obs.size());
  for (const TimedObs& o : obs) {
    const double recv = o.send + o.delay;
    if (o.send >= options.boundary || recv >= options.boundary) continue;
    if (options.window > 0.0 && recv < options.boundary - options.window)
      continue;
    in_window.push_back(o);
  }
  if (in_window.empty()) return out;

  if (in_window.size() < options.min_count) {
    for (const TimedObs& o : in_window) out.stats.add(o.delay);
    return out;
  }

  RateFit fit = fit_rate(in_window);
  if (options.max_slope > 0.0 && std::abs(fit.slope) > options.max_slope)
    fit = refit_with_slope(
        in_window, std::clamp(fit.slope, -options.max_slope,
                              options.max_slope));

  const double anchored = fit.predict(options.boundary);
  out.stats.dmin =
      ExtReal{anchored + fit.residual_min - options.guard};
  out.stats.dmax =
      ExtReal{anchored + fit.residual_max + options.guard};
  out.stats.count = in_window.size();
  out.fitted = true;
  out.abs_slope = std::abs(fit.slope);
  return out;
}

}  // namespace

DirectedStats drift_adjusted_stats(std::span<const TimedObs> obs,
                                   const DriftWindowOptions& options) {
  return adjust_direction(obs, options).stats;
}

LinkStats drift_adjusted_link_stats(const SystemModel& model,
                                    const LinkTraffic& traffic,
                                    const DriftWindowOptions& options,
                                    DriftFitSummary* summary) {
  LinkStats out;
  for (auto [a, b] : model.topology().links) {
    const ProcessorId ends[2][2] = {{a, b}, {b, a}};
    for (const auto& [p, q] : ends) {
      const DirectionResult r =
          adjust_direction(traffic.direction(p, q), options);
      if (r.stats.count == 0) continue;
      out.add_stats(p, q, r.stats);
      if (summary != nullptr) {
        if (r.fitted) {
          ++summary->directions_fitted;
          summary->max_abs_slope =
              std::max(summary->max_abs_slope, r.abs_slope);
        } else {
          ++summary->directions_raw;
        }
      }
    }
  }
  return out;
}

}  // namespace cs::drift
