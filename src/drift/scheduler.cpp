#include "drift/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cs::drift {

double drift_slack(double rho, double elapsed) {
  return 2.0 * std::max(rho, 0.0) * std::max(elapsed, 0.0);
}

double max_resync_interval(double rho, double slack) {
  if (rho <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(slack, 0.0) / (2.0 * rho);
}

double drift_adjusted_bound(double claimed, double rho, double window,
                            double interval) {
  return claimed + drift_slack(rho, window) + drift_slack(rho, interval);
}

ResyncPlan plan_resync(const DriftBudget& budget, Duration requested_period,
                       std::size_t requested_epochs) {
  ResyncPlan plan;
  plan.period = requested_period;
  plan.epochs = std::max<std::size_t>(requested_epochs, 1);
  if (!budget.active()) return plan;
  const double max_interval = max_resync_interval(budget.rho, budget.slack);
  if (requested_period.sec <= max_interval) return plan;
  plan.period = Duration{max_interval};
  const double span =
      requested_period.sec * static_cast<double>(plan.epochs);
  plan.epochs =
      static_cast<std::size_t>(std::ceil(span / max_interval));
  plan.clamped = true;
  return plan;
}

}  // namespace cs::drift
