#include "model/pairing.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace cs {
namespace {

struct SendRecord {
  ProcessorId from;
  ProcessorId to;
  ClockTime when;
};

std::unordered_map<MessageId, SendRecord> index_sends(
    std::span<const View> views) {
  std::unordered_map<MessageId, SendRecord> sends;
  for (const View& v : views) {
    for (const ViewEvent& e : v.events) {
      if (e.kind != EventKind::kSend) continue;
      const auto [it, inserted] =
          sends.emplace(e.msg, SendRecord{v.pid, e.peer, e.when});
      if (!inserted)
        throw InvalidExecution("duplicate message id among sends");
      (void)it;
    }
  }
  return sends;
}

}  // namespace

std::vector<PairedMessage> pair_messages(std::span<const View> views,
                                         MatchPolicy policy) {
  const auto sends = index_sends(views);
  std::vector<PairedMessage> out;
  std::unordered_map<MessageId, bool> received;
  for (const View& v : views) {
    for (const ViewEvent& e : v.events) {
      if (e.kind != EventKind::kReceive) continue;
      const auto it = sends.find(e.msg);
      if (it == sends.end()) {
        if (policy == MatchPolicy::kDropOrphans) continue;
        throw InvalidExecution("receive event with no matching send");
      }
      const SendRecord& s = it->second;
      if (s.to != v.pid || s.from != e.peer)
        throw InvalidExecution("message endpoints disagree between views");
      if (!received.emplace(e.msg, true).second)
        throw InvalidExecution("message received twice");
      out.push_back(PairedMessage{e.msg, s.from, v.pid, s.when, e.when});
    }
  }
  return out;
}

std::vector<TracedMessage> trace_messages(const Execution& exec) {
  const std::vector<View> views = exec.views();
  const std::vector<PairedMessage> paired = pair_messages(views);
  std::vector<TracedMessage> out;
  out.reserve(paired.size());
  for (const PairedMessage& m : paired) {
    TracedMessage t;
    t.msg = m;
    t.send_real = exec.history(m.from).start() + (m.send_clock - ClockTime{});
    t.recv_real = exec.history(m.to).start() + (m.recv_clock - ClockTime{});
    out.push_back(t);
  }
  return out;
}

}  // namespace cs
