#include "model/pairing.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace cs {
namespace {

struct SendRecord {
  ProcessorId from;
  ProcessorId to;
  ClockTime when;
};

std::unordered_map<MessageId, SendRecord> index_sends(
    std::span<const View> views) {
  std::unordered_map<MessageId, SendRecord> sends;
  for (const View& v : views) {
    for (const ViewEvent& e : v.events) {
      if (e.kind != EventKind::kSend) continue;
      const auto [it, inserted] =
          sends.emplace(e.msg, SendRecord{v.pid, e.peer, e.when});
      if (!inserted)
        throw InvalidExecution("duplicate message id among sends");
      (void)it;
    }
  }
  return sends;
}

}  // namespace

std::vector<PairedMessage> pair_messages(std::span<const View> views,
                                         MatchPolicy policy,
                                         PairingStats* stats) {
  const auto sends = index_sends(views);
  std::vector<PairedMessage> out;
  std::unordered_set<MessageId> received;
  for (const View& v : views) {
    for (const ViewEvent& e : v.events) {
      if (e.kind != EventKind::kReceive) continue;
      const auto it = sends.find(e.msg);
      if (it == sends.end()) {
        if (policy == MatchPolicy::kDropOrphans) {
          if (stats != nullptr) ++stats->orphan_receives;
          continue;
        }
        throw InvalidExecution("receive event with no matching send");
      }
      const SendRecord& s = it->second;
      if (s.to != v.pid || s.from != e.peer)
        throw InvalidExecution("message endpoints disagree between views");
      // Exactly one PairedMessage per send: a re-received id is a faulty
      // network's duplicate.  Strict pairing rejects it; orphan-dropping
      // pairing keeps the earliest copy (events are in per-processor time
      // order, and both receives live in the same receiver's view).
      if (!received.insert(e.msg).second) {
        if (policy == MatchPolicy::kDropOrphans) {
          if (stats != nullptr) ++stats->duplicate_receives;
          continue;
        }
        throw InvalidExecution("message received twice");
      }
      out.push_back(PairedMessage{e.msg, s.from, v.pid, s.when, e.when});
    }
  }
  if (stats != nullptr) {
    stats->paired = out.size();
    stats->unreceived_sends = sends.size() - received.size();
  }
  return out;
}

std::vector<TracedMessage> trace_messages(const Execution& exec) {
  const std::vector<View> views = exec.views();
  const std::vector<PairedMessage> paired = pair_messages(views);
  std::vector<TracedMessage> out;
  out.reserve(paired.size());
  for (const PairedMessage& m : paired) {
    TracedMessage t;
    t.msg = m;
    t.send_real = exec.history(m.from).start() + (m.send_clock - ClockTime{});
    t.recv_real = exec.history(m.to).start() + (m.recv_clock - ClockTime{});
    out.push_back(t);
  }
  return out;
}

}  // namespace cs
