// Histories: a processor's timeline as seen by the outside observer.
//
// A history fixes the real time of every step; the paper's invariant (§2.1,
// condition 4) ties the two timelines together: the clock time of a step at
// real time t is exactly t - S, where S is the real start time.  History
// stores S plus the events with their clock times and maintains that
// invariant; real times are derived, never stored separately, so the
// invariant cannot drift.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "model/step.hpp"
#include "model/view.hpp"

namespace cs {

class History {
 public:
  History() = default;
  History(ProcessorId pid, RealTime start);

  ProcessorId pid() const { return pid_; }

  /// S_pi: real time of the start event.
  RealTime start() const { return start_; }

  /// Append an event at the given clock time.  Events must be appended in
  /// nondecreasing clock-time order (checked).
  void append(ViewEvent ev);

  const std::vector<ViewEvent>& events() const { return events_; }

  /// Real time at which the i-th event occurred: start + clock time.
  RealTime real_time_of(std::size_t i) const {
    return start_ + (events_[i].when - ClockTime{});
  }

  /// The processor-visible projection (drops S, keeps clock times).
  View view() const;

  /// Lemma 4.1: shift(pi, s) moves every step s earlier in real time
  /// (later if s is negative); the result is again a history of the same
  /// processor with S' = S - s.  Clock times are untouched — this is the
  /// whole point: the shifted history is indistinguishable to the
  /// processor.
  History shifted(Duration s) const;

 private:
  ProcessorId pid_{0};
  RealTime start_{};
  std::vector<ViewEvent> events_;
};

}  // namespace cs
