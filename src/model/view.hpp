// Views: everything a processor knows after the interactive part.
//
// A view is the sequence of a processor's events with their *clock* times;
// real times of occurrence are deliberately absent (§2.1).  Two executions
// are equivalent iff all views coincide, and a correction function is a map
// from views to corrections (§3) — so View is the sole input type of the
// synchronization pipeline.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "model/step.hpp"

namespace cs {

struct View {
  ProcessorId pid{0};
  std::vector<ViewEvent> events;

  bool operator==(const View&) const = default;

  /// All send events, in order.
  std::vector<ViewEvent> sends() const;
  /// All receive events, in order.
  std::vector<ViewEvent> receives() const;

  /// The view as it existed when this processor's clock read `cutoff`:
  /// events strictly before the cutoff (the start event is always kept).
  /// This is what a processor can hand to the pipeline at an epoch
  /// boundary of a periodically re-synchronizing deployment.
  View prefix(ClockTime cutoff) const;

  /// Sliding-window cut: events e with `from <= e.when < until` (the start
  /// event is always kept).  A deployment with bounded memory — or one
  /// whose clocks drift, making old probes stale — hands the pipeline a
  /// recent window rather than its whole life; links silent for a full
  /// window then genuinely lose their observations, which is what the
  /// degraded-mode machinery (core/degraded.hpp) compensates for.
  View window(ClockTime from, ClockTime until) const;
};

}  // namespace cs
