// Identifier vocabulary types for the execution model.
#pragma once

#include <cstdint>

namespace cs {

/// Index of a processor in V = {p_0, ..., p_{n-1}}.  Matches graph NodeId so
/// processors index directly into topology/graph structures.
using ProcessorId = std::uint32_t;

/// Globally unique message identifier.  The paper assumes messages are
/// unique so that the send/receive correspondence of an execution is
/// uniquely defined (§2.1); we realize that assumption by construction.
using MessageId = std::uint64_t;

}  // namespace cs
