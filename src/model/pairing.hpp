// Message pairing and delay estimation.
//
// Lemma 6.1: given the views of sender and receiver, the *estimated delay*
// d̃(m) = d(m) + S_send - S_recv of any message is computable — it is simply
// the receive clock time minus the send clock time.  PairedMessage is that
// view-level object.  TracedMessage additionally carries ground-truth real
// times (observer-only) and hence the actual delay d(m); it exists for the
// simulator, admissibility checks, and evaluation.
#pragma once

#include <span>
#include <vector>

#include "model/execution.hpp"
#include "model/view.hpp"

namespace cs {

struct PairedMessage {
  MessageId id{0};
  ProcessorId from{0};
  ProcessorId to{0};
  ClockTime send_clock{};
  ClockTime recv_clock{};

  /// d̃(m) = T_recv - T_send in clock times (Lemma 6.1).  May be negative:
  /// the receiver's clock can be behind the sender's.
  Duration estimated_delay() const { return recv_clock - send_clock; }
};

struct TracedMessage {
  PairedMessage msg;
  RealTime send_real{};
  RealTime recv_real{};

  /// Actual delay d(m); non-negative in physical executions, but possibly
  /// negative in shifted executions probed by the admissibility machinery.
  Duration delay() const { return recv_real - send_real; }
};

/// What to do with a receive event whose matching send is absent from the
/// given views, or whose message id was already received.  In a complete
/// fault-free execution both are malformations (kStrict); in per-processor
/// view *prefixes* taken at an epoch boundary a sendless receive is
/// normal — the receiver may have cut its snapshot later in real time than
/// the sender did, so the send legitimately falls outside the prefix — and
/// under fault injection a network may re-deliver a message id
/// (kDropOrphans keeps the earliest copy and skips the rest).
enum class MatchPolicy { kStrict, kDropOrphans };

/// Tallies of what pairing kept and skipped — the raw material of per-link
/// observation coverage reports under faulty traffic.
struct PairingStats {
  std::size_t paired{0};              ///< PairedMessages produced
  std::size_t orphan_receives{0};     ///< receives without a send, skipped
  std::size_t duplicate_receives{0};  ///< re-received ids, skipped
  std::size_t unreceived_sends{0};    ///< sends with no surviving receive
};

/// Pair sends with receives across the given views.  Messages sent but not
/// (yet) received are dropped — they carry no delay information.  Under
/// kStrict, throws InvalidExecution on: a receive with no matching send, a
/// message id received more than once (exactly one PairedMessage may exist
/// per send), duplicate message ids among sends, or mismatched endpoint
/// metadata.  Under kDropOrphans, sendless receives are skipped and only
/// the earliest receive of a re-delivered id is paired (the other
/// malformations still throw).  `stats`, when non-null, receives the
/// kept/skipped tallies.
std::vector<PairedMessage> pair_messages(
    std::span<const View> views, MatchPolicy policy = MatchPolicy::kStrict,
    PairingStats* stats = nullptr);

/// As above, with ground-truth real times attached from the histories.
std::vector<TracedMessage> trace_messages(const Execution& exec);

}  // namespace cs
