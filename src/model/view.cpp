#include "model/view.hpp"

namespace cs {

std::vector<ViewEvent> View::sends() const {
  std::vector<ViewEvent> out;
  for (const ViewEvent& e : events)
    if (e.kind == EventKind::kSend) out.push_back(e);
  return out;
}

std::vector<ViewEvent> View::receives() const {
  std::vector<ViewEvent> out;
  for (const ViewEvent& e : events)
    if (e.kind == EventKind::kReceive) out.push_back(e);
  return out;
}

View View::prefix(ClockTime cutoff) const {
  View out;
  out.pid = pid;
  for (const ViewEvent& e : events) {
    if (e.kind == EventKind::kStart || e.when < cutoff)
      out.events.push_back(e);
  }
  return out;
}

View View::window(ClockTime from, ClockTime until) const {
  View out;
  out.pid = pid;
  for (const ViewEvent& e : events) {
    if (e.kind == EventKind::kStart ||
        (from <= e.when && e.when < until))
      out.events.push_back(e);
  }
  return out;
}

}  // namespace cs
