#include "model/execution.hpp"

#include <cassert>

#include "common/error.hpp"

namespace cs {

Execution::Execution(std::vector<History> histories)
    : histories_(std::move(histories)) {
  for (std::size_t i = 0; i < histories_.size(); ++i)
    if (histories_[i].pid() != i)
      throw InvalidExecution("histories must be indexed by processor id");
}

std::vector<RealTime> Execution::start_times() const {
  std::vector<RealTime> s;
  s.reserve(histories_.size());
  for (const History& h : histories_) s.push_back(h.start());
  return s;
}

std::vector<View> Execution::views() const {
  std::vector<View> v;
  v.reserve(histories_.size());
  for (const History& h : histories_) v.push_back(h.view());
  return v;
}

Execution Execution::shifted(std::span<const Duration> shifts) const {
  assert(shifts.size() == histories_.size());
  std::vector<History> out;
  out.reserve(histories_.size());
  for (std::size_t i = 0; i < histories_.size(); ++i)
    out.push_back(histories_[i].shifted(shifts[i]));
  return Execution(std::move(out));
}

bool Execution::equivalent_to(const Execution& other) const {
  if (processor_count() != other.processor_count()) return false;
  for (std::size_t i = 0; i < histories_.size(); ++i)
    if (histories_[i].view() != other.histories_[i].view()) return false;
  return true;
}

}  // namespace cs
