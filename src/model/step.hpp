// Events and steps as observed by a processor.
//
// The paper models a step as (s, T, i, s', M, TS).  For clock
// synchronization only the *observable timeline* matters: which events
// happened at which clock times.  ViewEvent is that projection — it is what
// a view (§2.1) is made of, and by Claim 3.1 it is the only thing a
// correction function may read.
#pragma once

#include "common/time.hpp"
#include "model/ids.hpp"

namespace cs {

enum class EventKind : std::uint8_t {
  kStart,        ///< processor begins executing; clock reads 0
  kSend,         ///< message `msg` sent to `peer`
  kReceive,      ///< message `msg` received from `peer`
  kTimerSet,     ///< timer armed for clock time `timer_at`
  kTimerFire,    ///< timer armed for `timer_at` goes off
};

struct ViewEvent {
  EventKind kind{EventKind::kStart};
  ClockTime when{};       ///< local clock time of the event
  MessageId msg{0};       ///< valid for kSend / kReceive
  ProcessorId peer{0};    ///< kSend: destination; kReceive: source
  ClockTime timer_at{};   ///< valid for kTimerSet / kTimerFire

  bool operator==(const ViewEvent&) const = default;
};

}  // namespace cs
