// Executions: one history per processor plus the (implicit) message
// correspondence.
//
// Message uniqueness makes the send/receive correspondence implicit: the
// receive of message id m pairs with the unique send of m.  An Execution is
// the outside observer's object — it knows real times — and is therefore
// only available to the simulator, the shifting machinery, and evaluation
// code; the pipeline proper sees views().
#pragma once

#include <span>
#include <vector>

#include "model/history.hpp"
#include "model/view.hpp"

namespace cs {

class Execution {
 public:
  Execution() = default;

  /// Histories must be indexed by pid: histories[i].pid() == i (checked).
  explicit Execution(std::vector<History> histories);

  std::size_t processor_count() const { return histories_.size(); }
  const History& history(ProcessorId p) const { return histories_[p]; }

  /// S_{alpha,p} for every p.
  std::vector<RealTime> start_times() const;

  /// The processor-visible projection, input to correction functions.
  std::vector<View> views() const;

  /// shift(alpha, S): shift each processor p's history by shifts[p]
  /// (Lemma 4.1 componentwise; the message correspondence is retained
  /// because message ids are unchanged).  The result is equivalent to
  /// *this by construction.
  Execution shifted(std::span<const Duration> shifts) const;

  /// Equivalence (§2.1): identical views for every processor.
  bool equivalent_to(const Execution& other) const;

 private:
  std::vector<History> histories_;
};

}  // namespace cs
