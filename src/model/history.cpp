#include "model/history.hpp"

#include <cassert>

#include "common/error.hpp"

namespace cs {

History::History(ProcessorId pid, RealTime start) : pid_(pid), start_(start) {
  ViewEvent start_ev;
  start_ev.kind = EventKind::kStart;
  start_ev.when = ClockTime{0.0};
  events_.push_back(start_ev);
}

void History::append(ViewEvent ev) {
  if (ev.kind == EventKind::kStart)
    throw InvalidExecution("history already has a start event");
  if (!events_.empty() && ev.when < events_.back().when)
    throw InvalidExecution("events must be appended in clock-time order");
  if (ev.when < ClockTime{0.0})
    throw InvalidExecution("event precedes the start event");
  events_.push_back(ev);
}

View History::view() const { return View{pid_, events_}; }

History History::shifted(Duration s) const {
  History h;
  h.pid_ = pid_;
  h.start_ = start_ - s;
  h.events_ = events_;
  return h;
}

}  // namespace cs
