// The parallel sweep executor: expand a campaign spec, fan the tasks out
// over the work-stealing pool, validate every instance against the paper's
// claims, and collect per-task results for lab/stats aggregation.
//
// Determinism contract (the "byte-identical regardless of thread count"
// guarantee):
//
//   * task seed = derive_task_seed(campaign seed, task index) — a pure
//     splitmix64-style hash, independent of scheduling;
//   * every random draw of a task (topology wiring, start offsets, delay
//     streams, fault streams) comes from RNGs derived from that seed alone;
//   * results land in a pre-sized vector slot keyed by task index, and
//     aggregation (lab/stats) walks that vector in index order.
//
// Wall-clock fields (TaskResult::seconds, CampaignResult::wall_seconds and
// anything derived, e.g. events/s) are the only nondeterministic outputs;
// the report writers segregate them so the deterministic sections can be
// byte-compared across runs (see docs/LAB.md).
//
// Validation per task (fault-free, bounded instances):
//
//   * Theorem 4.6 equality: ρ̄(SHIFTS corrections) == Ã^max, within
//     kThm46Tolerance (pure IEEE arithmetic noise; documented in LAB.md);
//   * soundness: ground-truth realized precision ρ <= Ã^max + tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lab/pool.hpp"
#include "lab/spec.hpp"

namespace cs::lab {

/// Tolerance of the Theorem 4.6 equality and soundness checks.  The two
/// sides are the same IEEE doubles pushed through max-cycle-mean vs
/// max-over-pairs evaluation; the residual is rounding noise orders of
/// magnitude below any delay scale the samplers produce.
inline constexpr double kThm46Tolerance = 1e-9;

/// splitmix64-based task seed derivation.  Pure function of
/// (campaign_seed, stream): identical for every thread count, platform and
/// scheduling order.  Also used for a task's derived sub-streams (fault
/// seed, sim seed) with small fixed stream offsets.
std::uint64_t derive_task_seed(std::uint64_t campaign_seed,
                               std::uint64_t stream);

struct TaskResult {
  bool ok{false};            ///< ran to completion (false => see `failure`)
  std::string failure;
  bool bounded{false};       ///< Ã^max finite
  double claimed{0.0};       ///< Ã^max when bounded
  double guaranteed{0.0};    ///< ρ̄ of the SHIFTS corrections (finite dirs)
  double realized{0.0};      ///< ground-truth ρ against the true offsets
  double thm46_gap{0.0};     ///< |ρ̄ - Ã^max| (bounded instances)
  bool sound{true};          ///< realized <= claimed + tolerance
  std::size_t nodes{0};
  std::size_t links{0};
  std::size_t events{0};     ///< delivered messages + fired timers
  std::size_t delivered{0};
  std::size_t dropped{0};    ///< fault-dropped sends (drops + outages)
  double seconds{0.0};       ///< wall clock — nondeterministic, timing-only

  // Zones-axis fields (meaningful only when zoned).  On a zoned arm,
  // `claimed` is the Thm 5.5/5.6 composed bound (an upper bound, not the
  // dense instance optimum), `guaranteed` repeats it (the dense m̃s matrix
  // is never materialized), and `thm46_gap` is the max Theorem 4.6
  // equality residual over every per-zone solve and the quotient solve —
  // so the standard report gates enforce per-zone optimality.
  bool zoned{false};
  std::size_t zone_count{0};
  std::size_t zone_max_size{0};   ///< nodes in the largest zone
  double zone_a_max_max{0.0};     ///< max per-zone Ã^max_Z (bounded zones)
  double realized_intra{0.0};     ///< max within-zone realized discrepancy
  double realized_cross{0.0};     ///< max cross-zone realized discrepancy

  // Drift-axis fields (meaningful only when drifting; src/drift).  On a
  // drifting arm `claimed` is the max per-epoch Ã^max of the drift-adjusted
  // estimates, `realized` the max ground-truth corrected spread over every
  // epoch's hold interval, and `sound` compares realized against
  // drift_bound (= claimed + 2ρ·(window + interval), scheduler.hpp) rather
  // than claimed alone.  `thm46_gap` is the max per-epoch equality residual,
  // so the standard gates still enforce Thm 4.6 on the drift-adjusted
  // instances.
  bool drifting{false};
  double drift_rho{0.0};          ///< declared oscillator band ρ
  double drift_resync{0.0};       ///< re-sync interval I (0 = disabled)
  double drift_horizon{0.0};      ///< evaluation horizon H
  double drift_window{0.0};       ///< effective estimation window W
  std::size_t drift_epochs{0};    ///< re-sync epochs evaluated
  double drift_bound{0.0};        ///< max drift-adjusted bound over epochs
  double drift_slope{0.0};        ///< max fitted |rate difference| seen

  // Byz-axis fields (meaningful only when byzantine; src/byz).  On a
  // Byzantine arm `claimed`/`realized`/`sound` are evaluated over the
  // *honest* agents only — liars forfeit the guarantee, Thm 4.6 still owes
  // one to everyone else — and a `byz_detected` epoch is a synchronization
  // outage (the pipeline rejected the epoch as InvalidAssumption, honest
  // agents got no corrections), which the --check gate counts as a failure
  // alongside soundness violations.
  bool byzantine{false};
  std::size_t byz_liars{0};          ///< lying agents in the resolved plan
  std::size_t byz_epochs{0};         ///< re-sync epochs evaluated
  std::size_t byz_detected{0};       ///< epochs rejected (InvalidAssumption)
  std::size_t byz_violations{0};     ///< epochs with an unsound honest claim
  std::size_t byz_lied_stamps{0};    ///< timestamps the adversary corrupted
  std::size_t byz_quorum_dropped{0}; ///< max m̃ls edges quorum removed/epoch
};

struct RunOptions {
  std::size_t threads{0};        ///< 0 = all hardware threads
  Metrics* metrics{nullptr};     ///< shared sink: pool, sim and stage metrics
  double tolerance{kThm46Tolerance};

  /// Worker threads *inside* each task (per-zone solves, estimator folds);
  /// results are byte-identical for any value.  Default 1: campaigns with
  /// many tasks parallelize across tasks.  Raise it for campaigns of few
  /// huge zoned tasks (the 100k fabric runs one task of 516 zone solves).
  std::size_t task_threads{1};
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<TaskSpec> tasks;      ///< odometer order; tasks[i].index == i
  std::vector<TaskResult> results;  ///< by task index
  std::size_t threads{1};
  double wall_seconds{0.0};         ///< nondeterministic, timing-only
};

/// Runs one expanded task to completion.  Never throws for per-instance
/// pipeline failures — those come back as ok == false with the message —
/// but spec-level errors (unknown family/mix) propagate.
TaskResult run_task(const CampaignSpec& spec, const TaskSpec& task,
                    double tolerance = kThm46Tolerance,
                    std::size_t task_threads = 1);

/// Expands the spec and runs every task across the pool.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunOptions& options = {});

}  // namespace cs::lab
