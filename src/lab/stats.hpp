// Statistical aggregation of campaign results.
//
// Aggregates per-task results into per-cell statistics — realized-vs-
// claimed precision ratios, optimality-gap quantiles (p50/p95/p99 via a
// streaming reservoir), Theorem 4.6 residuals, throughput and failure
// counts — and renders them as JSON, CSV and a stdout table.
//
// Output determinism: aggregation walks results in task-index order with a
// reservoir seeded from (campaign seed, cell id), so every deterministic
// field is byte-identical across thread counts.  Wall-clock-derived fields
// (events/s, seconds) live exclusively in the JSON "timing" object, which
// `include_timing = false` omits; the CSV carries deterministic columns
// only.  docs/LAB.md documents both schemas.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "lab/campaign.hpp"

namespace cs::lab {

/// Streaming quantile estimator: algorithm-R reservoir sampling with a
/// deterministic Rng, exact while count <= capacity (the common per-cell
/// case), a uniform sample beyond.  quantile() copies and sorts.
class ReservoirQuantiles {
 public:
  explicit ReservoirQuantiles(std::size_t capacity = 1024,
                              std::uint64_t seed = 1);

  void add(double x);
  std::size_t count() const { return seen_; }
  bool exact() const { return seen_ <= capacity_; }

  /// Quantile over the reservoir at the Hazen plotting position
  /// (pos = q*m - 0.5, linear interpolation, clamped to the observed
  /// range), q in [0, 1]; 0 when empty.  Tail quantiles the sample cannot
  /// resolve clamp to the extreme order statistic: p95 of fewer than 10
  /// samples and p99 of fewer than 50 report the observed max rather than
  /// interpolating below it.
  double quantile(double q) const;

 private:
  Rng rng_;
  std::size_t capacity_{0};
  std::size_t seen_{0};
  std::vector<double> sample_;
};

/// Distribution summary of one per-cell series.
struct SeriesStats {
  Accumulator acc;
  ReservoirQuantiles quantiles;

  explicit SeriesStats(std::uint64_t seed) : quantiles(1024, seed) {}
  void add(double x) {
    acc.add(x);
    quantiles.add(x);
  }
};

/// Aggregated statistics of one campaign cell
/// (topology x mix x faults x zones x drift x byz).
struct CellStats {
  std::size_t cell{0};
  std::string topology;
  std::string mix;
  std::string faults;
  std::string zones;     ///< zones-axis arm ("none" on dense arms)
  std::string drift;     ///< drift-axis arm ("none" on drift-free arms)
  std::string byz;       ///< byz-axis arm ("none" on honest arms)
  bool faulty{false};
  bool zoned{false};     ///< zone-hierarchical arm (Thm 5.5/5.6 composition)
  bool drifting{false};  ///< drifting-oscillator arm (src/drift)
  bool byzantine{false}; ///< Byzantine-adversary arm (src/byz)
  std::size_t nodes{0};

  std::size_t tasks{0};
  std::size_t failures{0};
  std::size_t bounded{0};
  std::size_t soundness_violations{0};
  double thm46_max_gap{0.0};

  SeriesStats claimed;        ///< Ã^max over bounded tasks
  SeriesStats ratio;          ///< realized / claimed (bounded, claimed > 0)
  SeriesStats optimality_gap; ///< claimed - realized (bounded tasks)
  double realized_max{0.0};

  // Zones-axis columns (zero on dense arms).
  std::size_t zone_count{0};        ///< max zone count over the cell's tasks
  std::size_t zone_max_size{0};     ///< largest zone seen
  double zone_a_max_max{0.0};       ///< max per-zone Ã^max_Z
  double realized_intra_max{0.0};   ///< max within-zone realized discrepancy
  double realized_cross_max{0.0};   ///< max cross-zone realized discrepancy

  // Drift-axis columns (zero on drift-free arms).  On a drifting arm the
  // soundness gate compares realized against drift_bound_max rather than
  // claimed alone; see campaign.hpp's TaskResult drift block.
  std::size_t drift_epochs{0};      ///< max re-sync epochs over tasks
  double drift_window_max{0.0};     ///< max effective estimation window W
  double drift_bound_max{0.0};      ///< max drift-adjusted bound over tasks
  double drift_slope_max{0.0};      ///< max fitted |rate difference| seen

  // Byz-axis columns (zero on honest arms).  Soundness is scored over the
  // honest subgraph (campaign.hpp's TaskResult byz block); byz_detected
  // epochs are synchronization outages and fail report_ok like violations.
  std::size_t byz_epochs{0};          ///< total epochs over the cell's tasks
  std::size_t byz_detected{0};        ///< total detection outages
  std::size_t byz_violations{0};      ///< total unsound honest-claim epochs
  std::size_t byz_lied_stamps{0};     ///< total corrupted timestamps
  std::size_t byz_quorum_dropped{0};  ///< max quorum-removed edges per epoch

  std::size_t events{0};
  std::size_t delivered{0};
  std::size_t dropped{0};
  double cpu_seconds{0.0};    ///< timing-only

  explicit CellStats(std::uint64_t seed)
      : claimed(seed), ratio(seed ^ 1), optimality_gap(seed ^ 2) {}
};

struct CampaignReport {
  CampaignSpec spec;
  std::vector<CellStats> cells;

  std::size_t tasks{0};
  std::size_t failures{0};
  std::size_t bounded{0};
  std::size_t soundness_violations{0};
  double thm46_max_gap{0.0};        ///< over fault-free cells
  std::size_t events{0};

  std::size_t threads{1};           ///< timing-only
  double wall_seconds{0.0};         ///< timing-only
  double cpu_seconds{0.0};          ///< timing-only
};

/// Folds per-task results into per-cell statistics (task-index order).
CampaignReport aggregate(const CampaignResult& result);

/// True iff the campaign validates: no failed tasks, no soundness
/// violations anywhere, no Byzantine detection outages (a detected epoch
/// means honest agents got no corrections), and Theorem 4.6 equality
/// within `tolerance` on every bounded task of every fault-free cell.
bool report_ok(const CampaignReport& report,
               double tolerance = kThm46Tolerance);

/// JSON report; `include_timing = false` omits every wall-clock-derived
/// field for byte-identical output across thread counts.
void write_report_json(std::ostream& os, const CampaignReport& report,
                       bool include_timing = true);

/// CSV report: one row per cell, deterministic columns only.  String
/// columns (topology, mix, faults) are RFC 4180 fields: always quoted,
/// embedded double quotes doubled, so commas or quotes in a describe()
/// string survive a round-trip through standard CSV parsers.
void write_report_csv(std::ostream& os, const CampaignReport& report);

/// Human-readable stdout summary table.
void print_report(std::ostream& os, const CampaignReport& report,
                  bool include_timing = true);

}  // namespace cs::lab
