#include "lab/spec.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "delaymodel/constraint.hpp"

namespace cs::lab {
namespace {

/// %.17g, matching the io/ writers: doubles round-trip exactly.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void fail_line(std::size_t line_no, const std::string& message) {
  fail("campaign spec line " + std::to_string(line_no) + ": " + message);
}

double parse_num(const std::string& token, std::size_t line_no,
                 const std::string& what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    fail_line(line_no, "'" + token + "' is not a valid " + what);
  }
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_no,
                        const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    fail_line(line_no, "'" + token + "' is not a valid " + what);
  }
}

}  // namespace

std::string MixSpec::describe() const {
  std::ostringstream os;
  os << kind;
  if (kind == "bounds") os << ' ' << fmt(lb) << ' ' << fmt(ub);
  else if (kind == "lower") os << ' ' << fmt(lb);
  else if (kind == "bias") os << ' ' << fmt(bias);
  else if (kind == "composite" || kind == "alternating")
    os << ' ' << fmt(lb) << ' ' << fmt(ub) << ' ' << fmt(bias);
  return os.str();
}

std::string FaultSpec::describe() const {
  if (!faulty()) return "none";
  std::ostringstream os;
  os << "drop " << fmt(drop);
  if (has_crash)
    os << " crash " << crash_pid << ' ' << fmt(crash_from) << ' '
       << fmt(crash_until);
  return os.str();
}

FaultPlan FaultSpec::build(std::uint64_t fault_seed) const {
  FaultPlan plan;
  plan.seed = fault_seed;
  plan.default_link.drop_probability = drop;
  if (has_crash)
    plan.crash(crash_pid, RealTime{crash_from}, RealTime{crash_until});
  return plan;
}

std::string ZoneAxisSpec::describe() const {
  if (kind == "size") return "size " + std::to_string(size);
  return kind;
}

std::string DriftAxisSpec::describe() const {
  if (!drifting()) return "none";
  std::ostringstream os;
  os << kind << ' ' << fmt(ppm);
  if (kind == "walk") os << ' ' << fmt(step_ppm);
  os << " resync " << fmt(resync);
  if (horizon > 0.0) os << " horizon " << fmt(horizon);
  return os.str();
}

std::string ByzAxisSpec::describe() const {
  if (!byzantine()) return "none";
  std::ostringstream os;
  os << kind << " f=" << f << " mag=" << fmt(magnitude)
     << " est=" << estimator;
  if (estimator == "quorum") os << " tol=" << fmt(quorum_tolerance);
  return os.str();
}

namespace {

std::size_t checked_mul(std::size_t a, std::size_t b, const char* what) {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a)
    fail(std::string("campaign ") + what + " count overflows std::size_t (" +
         std::to_string(a) + " x " + std::to_string(b) + ")");
  return a * b;
}

}  // namespace

std::size_t CampaignSpec::cell_count() const {
  std::size_t cells = checked_mul(topologies.size(), mixes.size(), "cell");
  cells = checked_mul(cells, faults.size(), "cell");
  cells = checked_mul(cells, zone_arm_count(), "cell");
  cells = checked_mul(cells, drift_arm_count(), "cell");
  return checked_mul(cells, byz_arm_count(), "cell");
}

std::size_t CampaignSpec::task_count() const {
  return checked_mul(cell_count(), seeds_per_cell, "task");
}

std::string ProtocolSpec::describe() const {
  std::ostringstream os;
  if (kind == "pingpong") os << "pingpong " << rounds;
  else os << "beacon " << fmt(period) << ' ' << count;
  return os.str();
}

std::vector<TaskSpec> expand(const CampaignSpec& spec) {
  if (spec.topologies.empty()) fail("campaign has no topologies");
  if (spec.mixes.empty()) fail("campaign has no delay mixes");
  if (spec.faults.empty()) fail("campaign has no fault plans");
  if (spec.seeds_per_cell == 0) fail("campaign has zero seeds per cell");
  // task_count() is overflow-checked; a cross product too large for
  // std::size_t fails here with the offending extents named rather than
  // wrapping the reserve below (and every later cell_id) silently.
  const std::size_t total = spec.task_count();
  std::vector<TaskSpec> tasks;
  tasks.reserve(total);
  std::size_t index = 0;
  for (std::size_t t = 0; t < spec.topologies.size(); ++t)
    for (std::size_t m = 0; m < spec.mixes.size(); ++m)
      for (std::size_t f = 0; f < spec.faults.size(); ++f)
        for (std::size_t z = 0; z < spec.zone_arm_count(); ++z)
          for (std::size_t d = 0; d < spec.drift_arm_count(); ++d)
            for (std::size_t b = 0; b < spec.byz_arm_count(); ++b)
              for (std::uint32_t s = 0; s < spec.seeds_per_cell; ++s)
                tasks.push_back({index++, t, m, f, z, d, b, s});
  return tasks;
}

void apply_mix(SystemModel& model, const MixSpec& mix) {
  const auto& links = model.topology().links;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto [a, b] = links[i];
    const auto composite = [&](ProcessorId x, ProcessorId y) {
      std::vector<std::unique_ptr<LinkConstraint>> parts;
      parts.push_back(make_bounds(x, y, mix.lb, mix.ub));
      parts.push_back(make_bias(x, y, mix.bias));
      return make_composite(x, y, std::move(parts));
    };
    if (mix.kind == "bounds") {
      model.set_constraint(make_bounds(a, b, mix.lb, mix.ub));
    } else if (mix.kind == "lower") {
      model.set_constraint(make_lower_bound_only(a, b, mix.lb));
    } else if (mix.kind == "bias") {
      model.set_constraint(make_bias(a, b, mix.bias));
    } else if (mix.kind == "composite") {
      model.set_constraint(composite(a, b));
    } else if (mix.kind == "alternating") {
      switch (i % 3) {
        case 0: model.set_constraint(make_bounds(a, b, mix.lb, mix.ub)); break;
        case 1: model.set_constraint(make_bias(a, b, mix.bias)); break;
        default: model.set_constraint(composite(a, b)); break;
      }
    } else {
      fail("unknown delay mix kind: '" + mix.kind + "'");
    }
  }
}

CampaignSpec load_campaign(std::istream& is) {
  CampaignSpec spec;
  spec.seeds_per_cell = 0;  // must be declared
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank or comment-only
    if (!saw_header) {
      std::string version;
      ls >> version;
      if (word != "chronosync-campaign" || version != "v1")
        fail_line(line_no, "expected header 'chronosync-campaign v1'");
      saw_header = true;
      continue;
    }
    std::vector<std::string> params;
    std::string token;
    while (ls >> token) params.push_back(token);
    const auto want = [&](std::size_t count, const char* usage) {
      if (params.size() != count)
        fail_line(line_no, "expected '" + word + " " + usage + "'");
    };
    if (word == "name") {
      want(1, "<identifier>");
      spec.name = params[0];
    } else if (word == "seed") {
      want(1, "<u64>");
      spec.seed = parse_u64(params[0], line_no, "seed");
    } else if (word == "seeds") {
      want(1, "<count>");
      spec.seeds_per_cell =
          static_cast<std::uint32_t>(parse_u64(params[0], line_no, "count"));
    } else if (word == "protocol") {
      if (params.empty()) fail_line(line_no, "protocol needs a kind");
      spec.protocol.kind = params[0];
      if (params[0] == "pingpong") {
        want(2, "pingpong <rounds>");
        spec.protocol.rounds =
            static_cast<std::size_t>(parse_u64(params[1], line_no, "rounds"));
      } else if (params[0] == "beacon") {
        want(3, "beacon <period> <count>");
        spec.protocol.period = parse_num(params[1], line_no, "period");
        spec.protocol.count =
            static_cast<std::size_t>(parse_u64(params[2], line_no, "count"));
      } else {
        fail_line(line_no, "unknown protocol '" + params[0] + "'");
      }
    } else if (word == "skew") {
      want(1, "<seconds>");
      spec.skew = parse_num(params[0], line_no, "skew");
    } else if (word == "delay-scale") {
      want(1, "<seconds>");
      spec.delay_scale = parse_num(params[0], line_no, "delay scale");
    } else if (word == "topology") {
      std::string rest;
      for (const std::string& p : params) rest += (rest.empty() ? "" : " ") + p;
      try {
        spec.topologies.push_back(parse_topo_spec(rest));
      } catch (const Error& e) {
        fail_line(line_no, e.what());
      }
    } else if (word == "mix") {
      if (params.empty()) fail_line(line_no, "mix needs a kind");
      MixSpec mix;
      mix.kind = params[0];
      if (mix.kind == "bounds") {
        want(3, "bounds <lb> <ub>");
        mix.lb = parse_num(params[1], line_no, "lower bound");
        mix.ub = parse_num(params[2], line_no, "upper bound");
      } else if (mix.kind == "lower") {
        want(2, "lower <lb>");
        mix.lb = parse_num(params[1], line_no, "lower bound");
      } else if (mix.kind == "bias") {
        want(2, "bias <bound>");
        mix.bias = parse_num(params[1], line_no, "bias bound");
      } else if (mix.kind == "composite" || mix.kind == "alternating") {
        want(4, (mix.kind + " <lb> <ub> <bias>").c_str());
        mix.lb = parse_num(params[1], line_no, "lower bound");
        mix.ub = parse_num(params[2], line_no, "upper bound");
        mix.bias = parse_num(params[3], line_no, "bias bound");
      } else {
        fail_line(line_no, "unknown mix kind '" + mix.kind + "'");
      }
      spec.mixes.push_back(mix);
    } else if (word == "faults") {
      if (params.empty()) fail_line(line_no, "faults needs a kind");
      FaultSpec fs;
      if (params[0] == "none") {
        want(1, "none");
      } else if (params[0] == "drop") {
        if (params.size() != 2 && params.size() != 6)
          fail_line(line_no,
                    "expected 'faults drop <p> [crash <pid> <from> <until>]'");
        fs.drop = parse_num(params[1], line_no, "drop probability");
        if (fs.drop < 0.0 || fs.drop > 1.0)
          fail_line(line_no, "drop probability must be in [0, 1]");
        if (params.size() == 6) {
          if (params[2] != "crash")
            fail_line(line_no, "expected 'crash', got '" + params[2] + "'");
          fs.has_crash = true;
          fs.crash_pid = static_cast<ProcessorId>(
              parse_u64(params[3], line_no, "processor id"));
          fs.crash_from = parse_num(params[4], line_no, "crash start");
          fs.crash_until = parse_num(params[5], line_no, "crash end");
        }
      } else {
        fail_line(line_no, "unknown fault kind '" + params[0] + "'");
      }
      spec.faults.push_back(fs);
    } else if (word == "zones") {
      if (params.empty()) fail_line(line_no, "zones needs a kind");
      ZoneAxisSpec zs;
      zs.kind = params[0];
      if (zs.kind == "none" || zs.kind == "natural") {
        want(1, zs.kind.c_str());
      } else if (zs.kind == "size") {
        want(2, "size <nodes-per-zone>");
        zs.size = static_cast<std::size_t>(
            parse_u64(params[1], line_no, "zone size"));
        if (zs.size == 0) fail_line(line_no, "zone size must be >= 1");
      } else {
        fail_line(line_no, "unknown zones kind '" + zs.kind + "'");
      }
      spec.zones.push_back(zs);
    } else if (word == "drift") {
      if (params.empty()) fail_line(line_no, "drift needs a kind");
      DriftAxisSpec ds;
      ds.kind = params[0];
      if (ds.kind == "none") {
        want(1, "none");
      } else if (ds.kind == "const" || ds.kind == "walk") {
        // const <ppm> resync <I> [horizon <H>]
        // walk <ppm> <step_ppm> resync <I> [horizon <H>]
        const std::size_t base = ds.kind == "walk" ? 1 : 0;
        const char* usage = ds.kind == "walk"
                                ? "walk <ppm> <step_ppm> resync <I> "
                                  "[horizon <H>]"
                                : "const <ppm> resync <I> [horizon <H>]";
        if (params.size() != 4 + base && params.size() != 6 + base)
          fail_line(line_no, std::string("expected 'drift ") + usage + "'");
        ds.ppm = parse_num(params[1], line_no, "drift ppm");
        if (ds.ppm <= 0.0) fail_line(line_no, "drift ppm must be positive");
        if (ds.kind == "walk") {
          ds.step_ppm = parse_num(params[2], line_no, "drift step ppm");
          if (ds.step_ppm <= 0.0)
            fail_line(line_no, "drift step ppm must be positive");
        }
        if (params[2 + base] != "resync")
          fail_line(line_no,
                    "expected 'resync', got '" + params[2 + base] + "'");
        ds.resync = parse_num(params[3 + base], line_no, "resync interval");
        if (ds.resync < 0.0)
          fail_line(line_no, "resync interval must be >= 0");
        if (params.size() == 6 + base) {
          if (params[4 + base] != "horizon")
            fail_line(line_no,
                      "expected 'horizon', got '" + params[4 + base] + "'");
          ds.horizon = parse_num(params[5 + base], line_no, "drift horizon");
          if (ds.horizon <= 0.0)
            fail_line(line_no, "drift horizon must be positive");
        }
        if (ds.resync == 0.0 && ds.horizon == 0.0)
          fail_line(line_no,
                    "drift with resync 0 needs an explicit 'horizon <H>'");
      } else {
        fail_line(line_no, "unknown drift kind '" + ds.kind + "'");
      }
      spec.drifts.push_back(ds);
    } else if (word == "byz") {
      if (params.empty()) fail_line(line_no, "byz needs a behavior");
      ByzAxisSpec bs;
      bs.kind = params[0];
      if (bs.kind == "none") {
        want(1, "none");
      } else {
        if (bs.kind != "lie-const" && bs.kind != "lie-ramp" &&
            bs.kind != "lie-random" && bs.kind != "replay" &&
            bs.kind != "equivocate")
          fail_line(line_no, "unknown byz behavior '" + bs.kind + "'");
        bool have_f = false, have_mag = false;
        for (std::size_t i = 1; i < params.size(); ++i) {
          const std::size_t eq = params[i].find('=');
          if (eq == std::string::npos)
            fail_line(line_no,
                      "byz expects key=value, got '" + params[i] + "'");
          const std::string key = params[i].substr(0, eq);
          const std::string value = params[i].substr(eq + 1);
          if (key == "f") {
            bs.f = static_cast<std::size_t>(
                parse_u64(value, line_no, "byz agent count"));
            have_f = true;
          } else if (key == "mag") {
            bs.magnitude = parse_num(value, line_no, "byz magnitude");
            have_mag = true;
          } else if (key == "est") {
            if (value != "naive" && value != "trimmed" && value != "quorum" &&
                value != "robust")
              fail_line(line_no,
                        "byz est= wants naive|trimmed|quorum|robust, got '" +
                            value + "'");
            bs.estimator = value;
          } else if (key == "tol") {
            bs.quorum_tolerance = parse_num(value, line_no, "byz tolerance");
            if (bs.quorum_tolerance <= 0.0)
              fail_line(line_no, "byz tol= must be positive");
          } else {
            fail_line(line_no, "unknown byz key '" + key + "'");
          }
        }
        if (!have_f || bs.f == 0)
          fail_line(line_no, "byz needs f=<count> with count >= 1");
        if (!have_mag || bs.magnitude <= 0.0)
          fail_line(line_no, "byz needs mag=<seconds> with a positive value");
      }
      spec.byz.push_back(bs);
    } else {
      fail_line(line_no, "unknown directive '" + word + "'");
    }
  }
  if (!saw_header) fail("campaign spec: missing 'chronosync-campaign v1' header");
  if (spec.seeds_per_cell == 0)
    fail("campaign spec: missing 'seeds <count>' directive");
  if (spec.topologies.empty()) fail("campaign spec: no 'topology' lines");
  if (spec.mixes.empty()) fail("campaign spec: no 'mix' lines");
  if (spec.faults.empty()) spec.faults.push_back(FaultSpec{});
  return spec;
}

CampaignSpec load_campaign_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open campaign spec: " + path);
  return load_campaign(is);
}

void save_campaign(std::ostream& os, const CampaignSpec& spec) {
  os << "chronosync-campaign v1\n";
  os << "name " << spec.name << "\n";
  os << "seed " << spec.seed << "\n";
  os << "seeds " << spec.seeds_per_cell << "\n";
  os << "protocol " << spec.protocol.describe() << "\n";
  os << "skew " << fmt(spec.skew) << "\n";
  os << "delay-scale " << fmt(spec.delay_scale) << "\n";
  for (const TopoSpec& t : spec.topologies)
    os << "topology " << t.describe() << "\n";
  for (const MixSpec& m : spec.mixes) os << "mix " << m.describe() << "\n";
  for (const FaultSpec& f : spec.faults)
    os << "faults " << f.describe() << "\n";
  // Only written when declared: a zones-free spec round-trips to a
  // zones-free spec with the identical implicit expansion (and likewise
  // for drift).
  for (const ZoneAxisSpec& z : spec.zones)
    os << "zones " << z.describe() << "\n";
  for (const DriftAxisSpec& d : spec.drifts)
    os << "drift " << d.describe() << "\n";
  for (const ByzAxisSpec& b : spec.byz) os << "byz " << b.describe() << "\n";
}

CampaignSpec preset_campaign(const std::string& name) {
  CampaignSpec spec;
  spec.name = name;
  if (name == "smoke") {
    // Tiny multi-family campaign for CI: every generator family category,
    // every mix kind, one faulty arm — a few seconds on two cores.
    spec.seed = 2026;
    spec.seeds_per_cell = 3;
    spec.protocol.rounds = 3;
    for (const char* t :
         {"ring 6", "toroid 3x3", "hypercube 3", "er 10 0.2", "ba 12 2",
          "dc 2 2 2"})
      spec.topologies.push_back(parse_topo_spec(t));
    spec.mixes.push_back({"bounds", 0.002, 0.01, 0.0});
    spec.mixes.push_back({"alternating", 0.002, 0.01, 0.004});
    spec.faults.push_back(FaultSpec{});
    FaultSpec lossy;
    lossy.drop = 0.15;
    spec.faults.push_back(lossy);
    return spec;
  }
  if (name == "toroid") {
    // The Frank–Welch odd-ary m-toroid sweep: every odd side k in {3, 5},
    // dimensions m in {1, 2, 3}, uniform symmetric bounds, 25 seeds per
    // cell -> 8 cells x 25 = 200 fault-free tasks.
    spec.seed = 1807;  // arXiv:1807.05139
    spec.seeds_per_cell = 25;
    spec.protocol.rounds = 4;
    for (const char* t : {"ring 3", "ring 5", "ring 9", "toroid 3x3",
                          "toroid 5x5", "toroid 3x3x3", "toroid 5x5x5",
                          "toroid 3x5x7"})
      spec.topologies.push_back(parse_topo_spec(t));
    spec.mixes.push_back({"bounds", 0.001, 0.003, 0.0});
    spec.faults.push_back(FaultSpec{});
    return spec;
  }
  if (name == "zones") {
    // The zone-composition CI campaign: small datacenter fabrics where the
    // dense pipeline still runs, swept across the zones axis — so the
    // per-zone Thm 4.6 equality checks and the composed-bound soundness
    // check exercise every zone-plan kind next to the dense reference arm.
    spec.seed = 55;  // Thm 5.5
    spec.seeds_per_cell = 3;
    spec.protocol.rounds = 3;
    for (const char* t : {"dc 2 3 4", "dc 1 4 6", "ba 24 2"})
      spec.topologies.push_back(parse_topo_spec(t));
    spec.mixes.push_back({"bounds", 0.002, 0.01, 0.0});
    spec.faults.push_back(FaultSpec{});
    spec.zones.push_back({"none", 0});
    spec.zones.push_back({"natural", 0});
    spec.zones.push_back({"size", 6});
    return spec;
  }
  if (name == "fabric100k") {
    // The scale deliverable (ROADMAP open item 1): one epoch over a
    // 102,404-agent datacenter fabric — 4 spines, 512 racks, 199 hosts per
    // rack — synchronized by natural-zone composition.  The dense pipeline
    // would need a ~10^10-entry m̃s matrix here; the zoned path solves 516
    // zones of <= 200 nodes plus a 516-node quotient.
    spec.seed = 100000;
    spec.seeds_per_cell = 1;
    spec.protocol.rounds = 2;
    spec.topologies.push_back(parse_topo_spec("dc 4 512 199"));
    spec.mixes.push_back({"bounds", 0.002, 0.01, 0.0});
    spec.faults.push_back(FaultSpec{});
    spec.zones.push_back({"natural", 0});
    return spec;
  }
  if (name == "drift" || name == "drift-noresync") {
    // The drift-axis CI campaigns (docs/DRIFT.md): constant-skew and
    // random-walk oscillators at a 200 ppm band over small graphs.  The
    // declared [1, 25] ms band leaves generous slack around the sampled
    // delays (the drift runner draws from the middle quarter of the band)
    // so the rate estimator's re-anchoring error can never make the
    // estimates physically inconsistent.  "drift" re-syncs every 10 s and
    // must pass --check; "drift-noresync" runs the same oscillators with
    // re-sync disabled over an 80 s horizon, where accumulated drift
    // demonstrably breaks the drift-adjusted bound (--check exits 1).
    spec.seed = 17;  // experiment E17
    spec.seeds_per_cell = 2;
    spec.protocol.rounds = 3;
    for (const char* t : {"ring 6", "toroid 3x3"})
      spec.topologies.push_back(parse_topo_spec(t));
    spec.mixes.push_back({"bounds", 0.001, 0.025, 0.0});
    spec.faults.push_back(FaultSpec{});
    const bool resync = name == "drift";
    DriftAxisSpec constant;
    constant.kind = "const";
    constant.ppm = 200;
    constant.resync = resync ? 10.0 : 0.0;
    constant.horizon = resync ? 0.0 : 80.0;
    DriftAxisSpec walk = constant;
    walk.kind = "walk";
    walk.step_ppm = 50;
    spec.drifts.push_back(constant);
    spec.drifts.push_back(walk);
    return spec;
  }
  if (name == "byz" || name == "byz-quorum") {
    // The Byzantine-axis CI campaigns (docs/BYZ.md): a coordinated
    // equivocator on a complete 6-clique and a pair of them on a chorded
    // 9-ring, lying just inside the per-observation admissibility window
    // (mag ≈ 1.4σ for the declared [1, 101] ms band sampled mid-quarter —
    // the silent-violation regime; see docs/BYZ.md).  "byz" leaves the
    // naive estimator undefended and must demonstrably fail --check
    // (violated or detection-outage cells); "byz-quorum" runs the same
    // adversary against quorum-validated estimates and must pass: every
    // honest-subgraph claim sound, zero detection outages.
    spec.seed = 46;  // Thm 4.6 — the guarantee under attack
    spec.seeds_per_cell = 3;
    spec.protocol.rounds = 3;
    spec.topologies.push_back(parse_topo_spec("complete 6"));
    // The chorded ring only joins the must-fail preset: against *adjacent*
    // equivocators its stride-{1,2,3} path diversity is too thin for the
    // quorum majority to localize the liar, so the defended arm still
    // suffers detection outages (loud, never silent — docs/BYZ.md).  The
    // quorum preset keeps the clique, where connectivity 5 > 2f holds with
    // honest-majority paths for both arms.
    if (name == "byz") spec.topologies.push_back(parse_topo_spec("circulant 9"));
    spec.mixes.push_back({"bounds", 0.001, 0.101, 0.0});
    spec.faults.push_back(FaultSpec{});
    ByzAxisSpec arm;
    arm.kind = "equivocate";
    arm.f = 1;
    arm.magnitude = 0.09;
    arm.estimator = name == "byz" ? "naive" : "quorum";
    spec.byz.push_back(arm);
    ByzAxisSpec pair = arm;
    pair.f = 2;
    pair.magnitude = 0.10;
    spec.byz.push_back(pair);
    return spec;
  }
  fail("unknown campaign preset: '" + name +
       "' (try 'smoke', 'toroid', 'zones', 'fabric100k', 'drift', "
       "'drift-noresync', 'byz', or 'byz-quorum')");
}

}  // namespace cs::lab
