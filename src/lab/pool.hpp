// Work-stealing parallel executor — moved to src/common/pool.hpp so the
// per-epoch pipeline stages in src/core can share it without a core -> lab
// dependency edge.  This header re-exports the names into cs::lab for the
// campaign engine and existing callers; semantics, counter names
// ("lab.pool.*"), and determinism guarantees are unchanged.
#pragma once

#include "common/pool.hpp"

namespace cs::lab {

using cs::PoolOptions;
using cs::resolve_threads;
using cs::run_indexed;

}  // namespace cs::lab
