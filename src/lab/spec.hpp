// Declarative campaign specifications.
//
// A campaign is a cross product
//
//   topology family/size × delay mix × fault plan × zones × drift × byz
//   × seeds
//
// expanded into a flat, stably ordered task list.  The (topology, mix,
// fault, zones, drift, byz) tuple is a *cell*; each cell runs once per seed
// index.  Task ordering is the declaration-order odometer — topology-major,
// then mix, then fault, then zones, then drift, then byz, then seed — and
// task seeds
// are derived per index by
// derive_task_seed (campaign.hpp), so the expansion is a pure function of
// the spec text: re-running a campaign on any machine with any thread
// count reproduces every instance bit for bit.
//
// On-disk format (line-based, '#' comments, like the io/ formats):
//
//   chronosync-campaign v1
//   name <identifier>
//   seed <campaign master seed>
//   seeds <runs per cell>
//   protocol pingpong <rounds> | protocol beacon <period> <count>
//   skew <max start skew seconds>
//   delay-scale <typical delay magnitude>
//   topology <family> <params...>      # one line per family instance
//   mix <kind> <params...>             # delay-assumption assignment
//   faults <kind> <params...>          # fault plan
//   zones <kind> <params...>           # optional zone-hierarchy axis
//   drift <kind> <params...>           # optional clock-drift axis
//   byz <behavior> <params...>         # optional Byzantine-adversary axis
//
// Mix grammar (per-link delay-assumption assignment hooks):
//   mix bounds <lb> <ub>            symmetric [lb, ub] on every link
//   mix lower <lb>                  lower bound only (ub = +inf)
//   mix bias <bound>                round-trip bias bound
//   mix composite <lb> <ub> <bias>  bounds ∧ bias on every link
//   mix alternating <lb> <ub> <bias>
//       heterogeneous: link i gets bounds / bias / composite by i mod 3
//
// Fault grammar:
//   faults none
//   faults drop <p>
//   faults drop <p> crash <pid> <from> <until>
//
// Zones grammar (core/zones.hpp — Thm 5.5/5.6 hierarchical composition):
//   zones none                      dense pipeline (the default axis)
//   zones size <k>                  greedy BFS clustering, ~k nodes/zone
//   zones natural                   topology-native zones (dc: one zone per
//                                   rack + singleton spines; otherwise BFS
//                                   with target ceil(sqrt(n)))
// No `zones` line at all means a single implicit "none" arm, so pre-zones
// campaign files expand to exactly the same task list as before.
//
// Drift grammar (src/drift — oscillator models + scheduled re-sync,
// docs/DRIFT.md):
//   drift none                      drift-free clocks (the paper's model)
//   drift const <ppm> resync <I> [horizon <H>]
//       constant-skew oscillators in [1 - ρ, 1 + ρ] (ρ = ppm·1e-6),
//       re-synchronized every I clock seconds over an evaluation horizon H
//       (default 4·I).  I = 0 disables re-sync (a single sync at H/4, held
//       to H) and then requires an explicit horizon — the arm that
//       demonstrates why re-sync is not optional under drift.
//   drift walk <ppm> <step_ppm> resync <I> [horizon <H>]
//       bounded random-walk oscillators: same band, rate stepping by up to
//       step_ppm and reflecting at the band edges.
// Like zones, no `drift` line means a single implicit "none" arm.
//
// Byz grammar (src/byz — lying agents + robust estimation, docs/BYZ.md):
//   byz none                        every agent reports honestly
//   byz <behavior> f=<count> mag=<s> [est=naive|trimmed|quorum]
//       <behavior> in lie-const|lie-ramp|lie-random|replay|equivocate;
//       f seeded-random agents lie with magnitude mag (seconds).  est picks
//       the estimator defending the honest agents: naive (the clean
//       pipeline), trimmed (MAD-gated observation folds), or quorum
//       (disjoint-path cross-validation of the m̃ls edges; tol=<s> sets the
//       per-hop corroboration tolerance, default 0.002).
// Like zones and drift, no `byz` line means a single implicit "none" arm.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "delaymodel/assignment.hpp"
#include "lab/topo.hpp"
#include "sim/fault_plan.hpp"

namespace cs::lab {

struct MixSpec {
  std::string kind;  ///< bounds | lower | bias | composite | alternating
  double lb{0.0};
  double ub{0.0};
  double bias{0.0};

  std::string describe() const;
};

struct FaultSpec {
  double drop{0.0};
  bool has_crash{false};
  ProcessorId crash_pid{0};
  double crash_from{0.0};
  double crash_until{0.0};

  bool faulty() const { return drop > 0.0 || has_crash; }
  std::string describe() const;

  /// Instantiates the plan (empty for a fault-free spec).  The plan's fault
  /// randomness is seeded separately by the campaign runner.
  FaultPlan build(std::uint64_t fault_seed) const;
};

/// One arm of the zones axis: whether and how a task's graph is
/// partitioned for zone-hierarchical synchronization (core/zones.hpp).
struct ZoneAxisSpec {
  std::string kind{"none"};  ///< none | size | natural
  std::size_t size{0};       ///< size kind only: target nodes per zone

  bool zoned() const { return kind != "none"; }
  std::string describe() const;
};

/// One arm of the drift axis: which oscillator model drives the task's
/// clocks and how often corrections are recomputed (src/drift).
struct DriftAxisSpec {
  std::string kind{"none"};  ///< none | const | walk
  double ppm{0.0};           ///< oscillator band ρ in parts-per-million
  double step_ppm{0.0};      ///< walk only: per-step bound
  double resync{0.0};        ///< re-sync interval I (clock s); 0 = disabled
  double horizon{0.0};       ///< evaluation horizon H; 0 = 4·resync

  bool drifting() const { return kind != "none"; }
  double rho() const { return ppm * 1e-6; }
  double horizon_or_default() const {
    return horizon > 0.0 ? horizon : 4.0 * resync;
  }
  std::string describe() const;
};

/// One arm of the Byzantine axis: which adversary corrupts the task's
/// timestamp reports and which robust estimator defends against it
/// (src/byz, core/robust.hpp).
struct ByzAxisSpec {
  std::string kind{"none"};     ///< none | lie-const | lie-ramp |
                                ///<   lie-random | replay | equivocate
  std::size_t f{0};             ///< seeded-random lying agents
  double magnitude{0.0};        ///< lie magnitude (seconds)
  std::string estimator{"naive"};  ///< naive | trimmed | quorum
  double quorum_tolerance{0.002};  ///< quorum: per-hop corroboration tol

  bool byzantine() const { return kind != "none"; }
  std::string describe() const;
};

struct ProtocolSpec {
  std::string kind{"pingpong"};  ///< pingpong | beacon
  std::size_t rounds{4};         ///< pingpong
  double period{0.15};           ///< beacon
  std::size_t count{20};         ///< beacon

  std::string describe() const;
};

struct CampaignSpec {
  std::string name{"campaign"};
  std::uint64_t seed{1};
  std::uint32_t seeds_per_cell{1};
  ProtocolSpec protocol;
  double skew{0.25};
  double delay_scale{0.1};
  std::vector<TopoSpec> topologies;
  std::vector<MixSpec> mixes;
  std::vector<FaultSpec> faults;
  /// Zones axis; empty = a single implicit "none" arm (dense pipeline),
  /// so campaigns predating the axis keep their exact task expansion.
  std::vector<ZoneAxisSpec> zones;
  /// Drift axis; empty = a single implicit "none" arm (drift-free clocks),
  /// with the same backward-compatibility guarantee as zones.
  std::vector<DriftAxisSpec> drifts;
  /// Byzantine axis; empty = a single implicit "none" arm (honest agents),
  /// with the same backward-compatibility guarantee as zones and drift.
  std::vector<ByzAxisSpec> byz;

  /// Arms of the zones axis including the implicit "none" (never 0).
  std::size_t zone_arm_count() const {
    return zones.empty() ? 1 : zones.size();
  }
  const ZoneAxisSpec& zone_arm(std::size_t id) const {
    static const ZoneAxisSpec kDense{};
    return zones.empty() ? kDense : zones[id];
  }

  /// Arms of the drift axis including the implicit "none" (never 0).
  std::size_t drift_arm_count() const {
    return drifts.empty() ? 1 : drifts.size();
  }
  const DriftAxisSpec& drift_arm(std::size_t id) const {
    static const DriftAxisSpec kDriftFree{};
    return drifts.empty() ? kDriftFree : drifts[id];
  }

  /// Arms of the Byzantine axis including the implicit "none" (never 0).
  std::size_t byz_arm_count() const { return byz.empty() ? 1 : byz.size(); }
  const ByzAxisSpec& byz_arm(std::size_t id) const {
    static const ByzAxisSpec kHonest{};
    return byz.empty() ? kHonest : byz[id];
  }

  /// Cross-product extents.  Overflow-checked: a campaign whose cross
  /// product exceeds std::size_t throws cs::Error instead of silently
  /// wrapping into a tiny (or enormous) bogus task list.
  std::size_t cell_count() const;
  std::size_t task_count() const;
};

/// One expanded task: a cell plus a seed index.  `index` is the task's
/// position in odometer order and the sole input (with the campaign seed)
/// of its derived RNG seed.
struct TaskSpec {
  std::size_t index{0};
  std::size_t topology_id{0};
  std::size_t mix_id{0};
  std::size_t fault_id{0};
  std::size_t zone_id{0};   ///< arm of the zones axis (0 when none declared)
  std::size_t drift_id{0};  ///< arm of the drift axis (0 when none declared)
  std::size_t byz_id{0};    ///< arm of the byz axis (0 when none declared)
  std::uint32_t seed_index{0};

  /// Dense cell index (topology-major, then mix, fault, zones, drift, byz).
  std::size_t cell_id(const CampaignSpec& spec) const {
    return ((((topology_id * spec.mixes.size() + mix_id) * spec.faults.size() +
              fault_id) *
                 spec.zone_arm_count() +
             zone_id) *
                spec.drift_arm_count() +
            drift_id) *
               spec.byz_arm_count() +
           byz_id;
  }
};

/// Odometer expansion; tasks[i].index == i.  Throws cs::Error if the spec
/// has no topologies, mixes, faults, or seeds.
std::vector<TaskSpec> expand(const CampaignSpec& spec);

/// Applies a mix to every link of the model (the per-link delay-assumption
/// assignment hook into delaymodel/).
void apply_mix(SystemModel& model, const MixSpec& mix);

/// Reads the on-disk format; throws cs::Error with a 1-based line number
/// and the offending token on malformed input.
CampaignSpec load_campaign(std::istream& is);
CampaignSpec load_campaign_file(const std::string& path);

/// Writes the on-disk format (round-trips through load_campaign).
void save_campaign(std::ostream& os, const CampaignSpec& spec);

/// Built-in campaigns: "smoke" (tiny multi-family CI campaign), "toroid"
/// (the Frank–Welch odd-ary m-toroid sweep, >= 200 tasks), "zones" (small
/// datacenter fabric swept across the zones axis, for CI), "fabric100k"
/// (a 102,404-agent datacenter fabric, natural zones — the dense pipeline
/// cannot touch this size), "drift" (constant + random-walk oscillators
/// with scheduled re-sync; --check passes), "drift-noresync" (the same
/// oscillators with re-sync disabled; --check demonstrably fails), "byz"
/// (an equivocating agent against the naive estimator; --check demonstrably
/// fails), and "byz-quorum" (the same adversary held off by quorum
/// validation; --check passes).  Throws cs::Error on unknown names.
CampaignSpec preset_campaign(const std::string& name);

}  // namespace cs::lab
