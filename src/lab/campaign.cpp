#include "lab/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "byz/harness.hpp"
#include "common/error.hpp"
#include "core/precision.hpp"
#include "core/synchronizer.hpp"
#include "core/zones.hpp"
#include "drift/harness.hpp"
#include "proto/beacon.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

namespace cs::lab {
namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::uint64_t splitmix64_once(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

AutomatonFactory make_protocol(const CampaignSpec& spec) {
  // Warmup past the maximum start skew so probes never race a peer's start.
  const Duration warmup{spec.skew + 0.1};
  if (spec.protocol.kind == "pingpong") {
    PingPongParams params;
    params.warmup = warmup;
    params.rounds = spec.protocol.rounds;
    return make_ping_pong(params);
  }
  if (spec.protocol.kind == "beacon") {
    BeaconParams params;
    params.warmup = warmup;
    params.period = Duration{spec.protocol.period};
    params.count = spec.protocol.count;
    return make_beacon(params);
  }
  fail("unknown campaign protocol: '" + spec.protocol.kind + "'");
}

// Instantiates a zones-axis arm for a concrete topology.  "natural" uses
// the datacenter fabric's rack structure when available and falls back to
// BFS clustering with ~sqrt(n) nodes per zone elsewhere; both choices are
// pure functions of the (already deterministic) topology.
ZonePlan build_zone_plan(const ZoneAxisSpec& arm, const TopoSpec& topo_spec,
                         const Topology& topo) {
  if (arm.kind == "natural") {
    if (topo_spec.family == "dc")
      return datacenter_zones(topo_spec.dims[0], topo_spec.dims[1],
                              topo_spec.dims[2]);
    const auto target = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(topo.node_count))));
    return greedy_bfs_zones(topo, std::max<std::size_t>(target, 1));
  }
  if (arm.kind == "size") return greedy_bfs_zones(topo, arm.size);
  fail("unknown zones arm kind: '" + arm.kind + "'");
}

// Maps one drift arm onto the shared trial harness (drift/harness.hpp) and
// folds its result into the TaskResult schema.  Drift arms are simulated
// with ping-pong probes on the harness's own epoch-derived schedule (the
// campaign protocol spec does not apply) and require a plain `bounds` mix:
// the actual delays are drawn from the middle quarter of the declared band
// so the declared slack absorbs the rate estimator's re-anchoring error
// (the E9b discipline; docs/DRIFT.md).
void run_drift_task(const CampaignSpec& spec, const TaskSpec& task,
                    const SystemModel& model, const DriftAxisSpec& arm,
                    std::uint64_t seed, Rng& offset_rng, double tolerance,
                    std::size_t task_threads, TaskResult& r) {
  const MixSpec& mix = spec.mixes[task.mix_id];
  if (mix.kind != "bounds")
    fail("drift arms require a 'bounds' mix (got '" + mix.kind + "')");

  drift::DriftTrialConfig config;
  config.oscillator.kind = arm.kind == "walk"
                               ? drift::OscillatorSpec::Kind::kRandomWalk
                               : drift::OscillatorSpec::Kind::kConstant;
  config.oscillator.ppm = arm.ppm;
  config.oscillator.step_ppm = arm.step_ppm;
  config.resync = arm.resync;
  config.horizon = arm.horizon_or_default();
  config.skew = spec.skew;
  const double width = mix.ub - mix.lb;
  config.sample_lo = mix.lb + 0.375 * width;
  config.sample_hi = mix.lb + 0.625 * width;
  config.sim_seed = derive_task_seed(seed, 2);
  config.drift_seed = derive_task_seed(seed, 3);
  config.start_offsets =
      random_start_offsets(model.processor_count(), spec.skew, offset_rng);
  config.sync_threads = task_threads;
  config.tolerance = tolerance;

  const drift::DriftTrialResult trial = drift::run_drift_trial(model, config);
  r.drifting = true;
  r.drift_rho = config.oscillator.rho();
  r.drift_resync = arm.resync;
  r.drift_horizon = config.horizon;
  r.drift_window = trial.window;
  r.drift_epochs = trial.epochs;
  r.drift_bound = trial.bound_max;
  r.drift_slope = trial.max_abs_slope;
  r.delivered = trial.delivered;
  r.dropped = trial.dropped;
  r.events = trial.events;
  if (!trial.ok) fail(trial.failure);
  r.bounded = true;  // unbounded epochs surface as trial failures
  r.claimed = trial.claimed_max;
  r.guaranteed = trial.guaranteed_max;
  r.thm46_gap = trial.thm46_gap;
  r.realized = trial.realized_max;
  r.sound = trial.sound;
}

// Maps one Byzantine arm onto the adversarial trial harness
// (byz/harness.hpp) and folds its result into the TaskResult schema.  Like
// drift, byz arms run ping-pong probes on the harness's own epoch schedule
// and require a plain `bounds` mix: delays are drawn from the middle
// quarter of the declared band so honest epochs carry slack and
// sub-detection-threshold lies are possible — the regime worth measuring
// (docs/BYZ.md).  The fault axis *does* compose (the injectors draw from
// disjoint derived streams); zones and drift do not (yet).
void run_byz_task(const CampaignSpec& spec, const TaskSpec& task,
                  const SystemModel& model, const ByzAxisSpec& arm,
                  std::uint64_t seed, Rng& offset_rng, double tolerance,
                  std::size_t task_threads, TaskResult& r) {
  const MixSpec& mix = spec.mixes[task.mix_id];
  if (mix.kind != "bounds")
    fail("byz arms require a 'bounds' mix (got '" + mix.kind + "')");

  const FaultSpec& fault_spec = spec.faults[task.fault_id];
  const FaultPlan fault_plan = fault_spec.build(derive_task_seed(seed, 1));

  byz::ByzTrialConfig config;
  config.plan.behavior = byz::behavior_from_name(arm.kind);
  config.plan.f = arm.f;
  config.plan.magnitude = arm.magnitude;
  config.plan.seed = derive_task_seed(seed, 4);
  // "robust" = trimmed folds *and* quorum validation: the MAD gate deletes
  // the floor-clamp outliers that would otherwise force detection outages,
  // and the quorum pass catches the silent corruption trimming alone would
  // let through (the trim-backfire finding; docs/BYZ.md).
  if (arm.estimator == "trimmed" || arm.estimator == "robust")
    config.robust.trim = true;
  if (arm.estimator == "quorum" || arm.estimator == "robust") {
    config.robust.quorum = 3;
    config.robust.quorum_tolerance = arm.quorum_tolerance;
  }
  if (arm.estimator != "naive" && arm.estimator != "trimmed" &&
      arm.estimator != "quorum" && arm.estimator != "robust")
    fail("unknown byz estimator: '" + arm.estimator + "'");
  if (fault_spec.faulty()) config.faults = &fault_plan;
  config.skew = spec.skew;
  const double width = mix.ub - mix.lb;
  config.sample_lo = mix.lb + 0.375 * width;
  config.sample_hi = mix.lb + 0.625 * width;
  config.sim_seed = derive_task_seed(seed, 2);
  config.start_offsets =
      random_start_offsets(model.processor_count(), spec.skew, offset_rng);
  config.sync_threads = task_threads;
  config.tolerance = tolerance;

  const byz::ByzTrialResult trial = byz::run_byz_trial(model, config);
  r.byzantine = true;
  r.byz_liars = arm.f;
  r.byz_epochs = trial.epochs;
  r.byz_detected = trial.detected_epochs;
  r.byz_violations = trial.violations;
  r.byz_lied_stamps = trial.lied_stamps;
  r.byz_quorum_dropped = trial.quorum_dropped_max;
  r.delivered = trial.delivered;
  r.dropped = trial.dropped;
  r.events = trial.events;
  if (!trial.ok) fail(trial.failure);
  // Honest-subgraph scoring: `claimed` is the max per-component bound the
  // pipeline published for components with >= 2 honest members, `realized`
  // the honest agents' measured spread, `sound` the trial verdict (zero
  // violated epochs).  Detected epochs are outages, counted separately.
  r.bounded = true;
  r.claimed = trial.claimed_honest_max;
  r.guaranteed = trial.claimed_honest_max;
  r.thm46_gap = trial.thm46_gap;
  r.realized = trial.realized_honest_max;
  r.sound = trial.sound;
}

}  // namespace

std::uint64_t derive_task_seed(std::uint64_t campaign_seed,
                               std::uint64_t stream) {
  // Two mixing rounds over the (seed, stream) pair; the multiplier
  // decorrelates consecutive streams before splitmix64 finishes the job.
  const std::uint64_t x =
      campaign_seed ^ (0x2545f4914f6cdd1dULL * (stream + 1));
  return splitmix64_once(splitmix64_once(x));
}

TaskResult run_task(const CampaignSpec& spec, const TaskSpec& task,
                    double tolerance, std::size_t task_threads) {
  const auto start = SteadyClock::now();
  TaskResult r;
  const std::uint64_t seed = derive_task_seed(spec.seed, task.index);
  Rng rng(seed);
  Rng topo_rng = rng.split(1);
  Rng offset_rng = rng.split(2);

  const Topology topo =
      make_topology(spec.topologies[task.topology_id], topo_rng);
  r.nodes = topo.node_count;
  r.links = topo.link_count();
  SystemModel model(topo);
  apply_mix(model, spec.mixes[task.mix_id]);

  const FaultSpec& fault_spec = spec.faults[task.fault_id];
  const FaultPlan plan = fault_spec.build(derive_task_seed(seed, 1));

  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), spec.skew, offset_rng);
  opts.seed = derive_task_seed(seed, 2);
  opts.delay_scale = spec.delay_scale;
  // The default cap guards against runaway protocols on lab-sized graphs;
  // scale it with the instance so 100k-node fabrics don't trip it while a
  // protocol generating events out of proportion to the topology still does.
  opts.max_events = std::max<std::size_t>(
      opts.max_events,
      64 * (spec.protocol.rounds + 1) * (topo.link_count() + topo.node_count));
  if (fault_spec.faulty()) opts.faults = &plan;

  try {
    const ByzAxisSpec& byz_arm = spec.byz_arm(task.byz_id);
    if (byz_arm.byzantine()) {
      // Byzantine arms route through the adversarial harness: epoch-
      // scheduled probing, corrupted stamps, honest-subgraph scoring.  The
      // fault axis composes (independent derived RNG streams); zones and
      // drift do not.
      if (spec.zone_arm(task.zone_id).zoned())
        fail("byz arms do not compose with zones yet");
      if (spec.drift_arm(task.drift_id).drifting())
        fail("byz arms do not compose with drift yet");
      run_byz_task(spec, task, model, byz_arm, seed, offset_rng, tolerance,
                   task_threads, r);
      r.ok = true;
      r.seconds = seconds_since(start);
      return r;
    }

    const DriftAxisSpec& drift_arm = spec.drift_arm(task.drift_id);
    if (drift_arm.drifting()) {
      // Drifting clocks route through the drift harness: its own probe
      // schedule, windowed detrended estimation per epoch boundary, and
      // ground-truth evaluation against the drift-adjusted bound.  The
      // fault and zones axes do not compose with drift (yet).
      if (fault_spec.faulty())
        fail("drift arms do not compose with fault plans yet");
      if (spec.zone_arm(task.zone_id).zoned())
        fail("drift arms do not compose with zones yet");
      run_drift_task(spec, task, model, drift_arm, seed, offset_rng,
                     tolerance, task_threads, r);
      r.ok = true;
      r.seconds = seconds_since(start);
      return r;
    }

    const SimResult sim = simulate(model, make_protocol(spec), opts);
    r.delivered = sim.delivered_messages;
    r.dropped = sim.fault_dropped_messages;
    r.events = sim.delivered_messages + sim.fired_timers;
    const std::vector<View> views = sim.execution.views();
    const std::vector<RealTime> starts = sim.execution.start_times();

    SyncOptions sync_opts;
    // Omission faults leave orphan sends in the views; the strict pairing
    // policy stays on for clean cells so id-reuse bugs cannot hide.
    sync_opts.match =
        fault_spec.faulty() ? MatchPolicy::kDropOrphans : MatchPolicy::kStrict;

    const ZoneAxisSpec& zone_arm = spec.zone_arm(task.zone_id);
    if (zone_arm.zoned()) {
      // Zone-hierarchical path (Thm 5.5/5.6 composition).  `claimed` is the
      // composed bound; `thm46_gap` folds the per-zone and quotient
      // equality residuals so the report gates enforce zone optimality.
      sync_opts.threads = task_threads;
      const ZonePlan plan = build_zone_plan(
          zone_arm, spec.topologies[task.topology_id], topo);
      const ZonedOutcome out =
          synchronize_zoned(model, views, plan, sync_opts);
      r.zoned = true;
      r.zone_count = out.plan.count;
      for (const ZoneStats& z : out.zones) {
        r.zone_max_size = std::max(r.zone_max_size, std::size_t{z.size});
        if (z.bounded) r.zone_a_max_max = std::max(r.zone_a_max_max, z.a_max);
        r.thm46_gap = std::max(r.thm46_gap, z.thm46_gap);
      }
      r.thm46_gap = std::max(r.thm46_gap, out.quotient_thm46_gap);
      const ZoneRealized realized =
          realized_precision_zoned(starts, out.corrections, out.plan);
      r.realized = realized.overall;
      r.realized_intra = realized.intra;
      r.realized_cross = realized.cross;
      r.bounded = out.bounded();
      if (r.bounded) {
        r.claimed = out.composed_bound.finite();
        r.guaranteed = r.claimed;
        r.sound = r.realized <= r.claimed + tolerance;
      }
    } else {
      const SyncOutcome out = synchronize(model, views, sync_opts);

      r.bounded = out.bounded();
      r.realized = realized_precision(starts, out.corrections);
      if (r.bounded) {
        r.claimed = out.optimal_precision.finite();
        r.guaranteed =
            guaranteed_precision(out.ms_estimates, out.corrections).finite();
        r.thm46_gap = std::abs(r.guaranteed - r.claimed);
        r.sound = r.realized <= r.claimed + tolerance;
      } else {
        // Synchronized per finiteness component; the global Ã^max is +inf
        // and Theorem 4.6 equality is only meaningful per component, so
        // record the finite-direction guarantee and skip the equality
        // check.
        r.guaranteed =
            guaranteed_precision_finite(out.ms_estimates, out.corrections);
      }
    }
    r.ok = true;
  } catch (const Error& e) {
    r.ok = false;
    r.failure = e.what();
  }
  r.seconds = seconds_since(start);
  return r;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const RunOptions& options) {
  const auto start = SteadyClock::now();
  CampaignResult result;
  result.spec = spec;
  result.tasks = expand(spec);
  result.results.resize(result.tasks.size());
  result.threads = resolve_threads(options.threads);

  PoolOptions pool;
  pool.threads = options.threads;
  pool.metrics = options.metrics;
  run_indexed(
      result.tasks.size(),
      [&](std::size_t i) {
        result.results[i] = run_task(spec, result.tasks[i], options.tolerance,
                                     options.task_threads);
        metrics_increment(options.metrics, result.results[i].ok
                                               ? "lab.tasks_ok"
                                               : "lab.tasks_failed");
        metrics_observe(options.metrics, "lab.task_seconds",
                        result.results[i].seconds);
      },
      pool);

  result.wall_seconds = seconds_since(start);
  return result;
}

}  // namespace cs::lab
