#include "lab/topo.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace cs::lab {
namespace {

void add_link(std::set<std::pair<NodeId, NodeId>>& have,
              std::vector<std::pair<NodeId, NodeId>>& links, NodeId a,
              NodeId b) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  if (have.insert({a, b}).second) links.emplace_back(a, b);
}

}  // namespace

Topology make_toroid(std::span<const std::size_t> dims) {
  if (dims.empty()) fail("toroid needs at least one dimension");
  std::size_t n = 1;
  for (const std::size_t k : dims) {
    if (k == 0) fail("toroid dimensions must be >= 1");
    n *= k;
  }
  Topology t{n, {}};
  std::set<std::pair<NodeId, NodeId>> have;
  // Node id = mixed-radix encoding of its coordinates, first dimension
  // fastest: id = c0 + k0*(c1 + k1*(c2 + ...)).
  std::vector<std::size_t> coord(dims.size(), 0);
  for (std::size_t id = 0; id < n; ++id) {
    std::size_t stride = 1;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const std::size_t k = dims[d];
      if (k > 1) {
        const std::size_t next_c = (coord[d] + 1) % k;
        const std::size_t neighbor =
            id - coord[d] * stride + next_c * stride;
        add_link(have, t.links, static_cast<NodeId>(id),
                 static_cast<NodeId>(neighbor));
      }
      stride *= k;
    }
    for (std::size_t d = 0; d < dims.size(); ++d) {  // increment coordinates
      if (++coord[d] < dims[d]) break;
      coord[d] = 0;
    }
  }
  return t;
}

Topology make_torus(std::size_t width, std::size_t height) {
  const std::size_t dims[] = {width, height};
  return make_toroid(dims);
}

Topology make_hypercube(std::size_t dim) {
  if (dim > 20) fail("hypercube dimension too large");
  const std::size_t n = std::size_t{1} << dim;
  Topology t{n, {}};
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t d = 0; d < dim; ++d) {
      const std::size_t w = v ^ (std::size_t{1} << d);
      if (v < w)
        t.links.emplace_back(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  return t;
}

Topology make_barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  if (m < 1) fail("barabasi-albert needs m >= 1");
  const std::size_t core = std::min(m + 1, n);
  Topology t{n, {}};
  std::set<std::pair<NodeId, NodeId>> have;
  for (std::size_t a = 0; a < core; ++a)
    for (std::size_t b = a + 1; b < core; ++b)
      add_link(have, t.links, static_cast<NodeId>(a), static_cast<NodeId>(b));
  // Classic endpoint-list sampling: a node's probability of being chosen is
  // proportional to how often it appears as a link endpoint (its degree).
  std::vector<NodeId> endpoints;
  for (const auto& [a, b] : t.links) {
    endpoints.push_back(a);
    endpoints.push_back(b);
  }
  for (std::size_t v = core; v < n; ++v) {
    std::set<NodeId> targets;
    while (targets.size() < std::min(m, v)) {
      targets.insert(endpoints.empty()
                         ? static_cast<NodeId>(rng.uniform_int(v))
                         : endpoints[rng.uniform_int(endpoints.size())]);
    }
    for (const NodeId u : targets) {
      add_link(have, t.links, static_cast<NodeId>(v), u);
      endpoints.push_back(static_cast<NodeId>(v));
      endpoints.push_back(u);
    }
  }
  return t;
}

Topology make_erdos_renyi(std::size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) fail("erdos-renyi probability must be in [0, 1]");
  return make_connected_gnp(n, p, rng);
}

Topology make_datacenter(std::size_t spines, std::size_t racks,
                         std::size_t hosts) {
  if (spines < 1 || racks < 1) fail("datacenter needs >= 1 spine and rack");
  Topology t{spines + racks + racks * hosts, {}};
  for (std::size_t r = 0; r < racks; ++r) {
    const auto tor = static_cast<NodeId>(spines + r);
    for (std::size_t s = 0; s < spines; ++s)
      t.links.emplace_back(static_cast<NodeId>(s), tor);
    for (std::size_t h = 0; h < hosts; ++h)
      t.links.emplace_back(
          tor, static_cast<NodeId>(spines + racks + r * hosts + h));
  }
  return t;
}

// ---- Spec grammar --------------------------------------------------------

namespace {

std::size_t parse_size(const std::string& token, const std::string& what) {
  std::size_t pos = 0;
  std::size_t v = 0;
  try {
    v = std::stoul(token, &pos);
  } catch (const std::exception&) {
    fail("topology spec: '" + token + "' is not a valid " + what);
  }
  if (pos != token.size())
    fail("topology spec: '" + token + "' is not a valid " + what);
  return v;
}

std::vector<std::size_t> parse_dims(const std::string& token) {
  std::vector<std::size_t> dims;
  std::string part;
  std::istringstream is(token);
  while (std::getline(is, part, 'x'))
    dims.push_back(parse_size(part, "dimension"));
  if (dims.empty()) fail("topology spec: empty dimension list");
  return dims;
}

}  // namespace

std::string TopoSpec::describe() const {
  std::ostringstream os;
  os << family;
  if (family == "grid" || family == "torus" || family == "toroid") {
    os << ' ';
    for (std::size_t i = 0; i < dims.size(); ++i)
      os << (i > 0 ? "x" : "") << dims[i];
  } else if (family == "er") {
    os << ' ' << dims.at(0) << ' ' << p;
  } else {
    for (const std::size_t d : dims) os << ' ' << d;
  }
  return os.str();
}

std::size_t TopoSpec::node_count() const {
  if (family == "grid" || family == "torus" || family == "toroid")
    return std::accumulate(dims.begin(), dims.end(), std::size_t{1},
                           std::multiplies<>{});
  if (family == "hypercube") return std::size_t{1} << dims.at(0);
  if (family == "dc")
    return dims.at(0) + dims.at(1) + dims.at(1) * dims.at(2);
  return dims.at(0);
}

bool TopoSpec::randomized() const {
  return family == "er" || family == "ba" || family == "tree" ||
         family == "wan";
}

bool TopoSpec::odd_ary_toroid() const {
  if (family == "ring") return dims.at(0) % 2 == 1 && dims.at(0) >= 3;
  if (family != "torus" && family != "toroid") return false;
  return std::all_of(dims.begin(), dims.end(), [](std::size_t k) {
    return k >= 3 && k % 2 == 1;
  });
}

TopoSpec parse_topo_spec(const std::string& text) {
  std::istringstream is(text);
  TopoSpec spec;
  if (!(is >> spec.family)) fail("topology spec: empty");
  std::vector<std::string> params;
  std::string token;
  while (is >> token) params.push_back(token);

  const auto want = [&](std::size_t count, const char* usage) {
    if (params.size() != count)
      fail("topology spec '" + text + "': expected '" + spec.family + " " +
           usage + "'");
  };

  const std::string& f = spec.family;
  if (f == "line" || f == "ring" || f == "star" || f == "complete" ||
      f == "circulant" || f == "tree" || f == "wan") {
    want(1, "N");
    spec.dims = {parse_size(params[0], "node count")};
  } else if (f == "grid" || f == "torus") {
    want(1, "WxH");
    spec.dims = parse_dims(params[0]);
    if (spec.dims.size() != 2)
      fail("topology spec '" + text + "': " + f + " needs exactly WxH");
  } else if (f == "toroid") {
    want(1, "K1xK2x...");
    spec.dims = parse_dims(params[0]);
  } else if (f == "hypercube") {
    want(1, "D");
    spec.dims = {parse_size(params[0], "dimension")};
  } else if (f == "er") {
    want(2, "N P");
    spec.dims = {parse_size(params[0], "node count")};
    try {
      spec.p = std::stod(params[1]);
    } catch (const std::exception&) {
      fail("topology spec: '" + params[1] + "' is not a valid probability");
    }
  } else if (f == "ba") {
    want(2, "N M");
    spec.dims = {parse_size(params[0], "node count"),
                 parse_size(params[1], "attachment count")};
  } else if (f == "dc") {
    want(3, "SPINES RACKS HOSTS");
    spec.dims = {parse_size(params[0], "spine count"),
                 parse_size(params[1], "rack count"),
                 parse_size(params[2], "host count")};
  } else {
    fail("unknown topology family: '" + f + "'");
  }
  return spec;
}

Topology make_topology(const TopoSpec& spec, Rng& rng) {
  const std::string& f = spec.family;
  if (f == "line") return make_line(spec.dims.at(0));
  if (f == "ring") return make_ring(spec.dims.at(0));
  if (f == "star") return make_star(spec.dims.at(0));
  if (f == "complete") return make_complete(spec.dims.at(0));
  if (f == "circulant") {
    static constexpr std::size_t kStrides[] = {1, 2, 3};
    return make_circulant(spec.dims.at(0), kStrides);
  }
  if (f == "tree") return make_random_tree(spec.dims.at(0), rng);
  if (f == "wan")
    return make_wan(spec.dims.at(0),
                    std::max<std::size_t>(3, spec.dims.at(0) / 4), rng);
  if (f == "grid") return make_grid(spec.dims.at(0), spec.dims.at(1));
  if (f == "torus") return make_torus(spec.dims.at(0), spec.dims.at(1));
  if (f == "toroid") return make_toroid(spec.dims);
  if (f == "hypercube") return make_hypercube(spec.dims.at(0));
  if (f == "er") return make_erdos_renyi(spec.dims.at(0), spec.p, rng);
  if (f == "ba")
    return make_barabasi_albert(spec.dims.at(0), spec.dims.at(1), rng);
  if (f == "dc")
    return make_datacenter(spec.dims.at(0), spec.dims.at(1), spec.dims.at(2));
  fail("unknown topology family: '" + f + "'");
}

std::vector<std::string> topo_families() {
  return {"line",  "ring",   "star",      "complete", "circulant",
          "tree",  "wan",    "grid",      "torus",    "toroid",
          "hypercube", "er", "ba",        "dc"};
}

}  // namespace cs::lab
