#include "lab/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/table.hpp"

namespace cs::lab {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// JSON string literal: quotes, with the characters JSON cannot carry raw
/// escaped.  Spec describe() strings are plain ASCII today, so this changes
/// no existing bytes — it keeps the output well-formed if they ever grow
/// quotes or backslashes.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += ch; break;
    }
  }
  out += '"';
  return out;
}

/// RFC 4180 CSV field: always quoted (these columns were always quoted),
/// embedded double quotes doubled.  Commas and newlines are then safe
/// inside the field.
std::string csv_field(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    out += ch;
    if (ch == '"') out += '"';
  }
  out += '"';
  return out;
}

void series_json(std::ostream& os, const char* indent, const char* name,
                 const SeriesStats& s) {
  os << indent << quoted(name) << ": {"
     << "\"count\": " << s.acc.count() << ", \"mean\": "
     << fmt(s.acc.count() == 0 ? 0.0 : s.acc.mean())
     << ", \"min\": " << fmt(s.acc.count() == 0 ? 0.0 : s.acc.min())
     << ", \"max\": " << fmt(s.acc.count() == 0 ? 0.0 : s.acc.max())
     << ", \"p50\": " << fmt(s.quantiles.quantile(0.50))
     << ", \"p95\": " << fmt(s.quantiles.quantile(0.95))
     << ", \"p99\": " << fmt(s.quantiles.quantile(0.99)) << "}";
}

}  // namespace

ReservoirQuantiles::ReservoirQuantiles(std::size_t capacity,
                                       std::uint64_t seed)
    : rng_(seed), capacity_(capacity == 0 ? 1 : capacity) {
  sample_.reserve(capacity_);
}

void ReservoirQuantiles::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  // Algorithm R: the new element replaces a uniformly random slot with
  // probability capacity / seen (one draw per element, always taken, so the
  // stream position of an element alone decides the RNG state).
  const std::uint64_t j = rng_.uniform_int(seen_);
  if (j < sample_.size()) sample_[j] = x;
}

double ReservoirQuantiles::quantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> v(sample_.begin(), sample_.end());
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size();
  if (m == 1) return v.front();
  // Hazen plotting position: pos = q*m - 0.5, clamped to the sample range.
  // Unlike the pos = q*(m-1) convention, tail quantiles saturate at the
  // extreme order statistics once the sample is too small to resolve them:
  // p95 of fewer than 10 samples and p99 of fewer than 50 report the max
  // observed instead of interpolating below a value that was actually seen.
  const double pos = q * static_cast<double>(m) - 0.5;
  if (pos <= 0.0) return v.front();
  if (pos >= static_cast<double>(m - 1)) return v.back();
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

CampaignReport aggregate(const CampaignResult& result) {
  CampaignReport report;
  report.spec = result.spec;
  report.threads = result.threads;
  report.wall_seconds = result.wall_seconds;

  const CampaignSpec& spec = result.spec;
  report.cells.reserve(spec.cell_count());
  for (std::size_t t = 0; t < spec.topologies.size(); ++t)
    for (std::size_t m = 0; m < spec.mixes.size(); ++m)
      for (std::size_t f = 0; f < spec.faults.size(); ++f)
        for (std::size_t z = 0; z < spec.zone_arm_count(); ++z)
          for (std::size_t d = 0; d < spec.drift_arm_count(); ++d)
            for (std::size_t b = 0; b < spec.byz_arm_count(); ++b) {
              const std::size_t id = report.cells.size();
              CellStats cell(derive_task_seed(spec.seed, 0x9e1lu + id));
              cell.cell = id;
              cell.topology = spec.topologies[t].describe();
              cell.nodes = spec.topologies[t].node_count();
              cell.mix = spec.mixes[m].describe();
              cell.faults = spec.faults[f].describe();
              cell.faulty = spec.faults[f].faulty();
              cell.zones = spec.zone_arm(z).describe();
              cell.zoned = spec.zone_arm(z).zoned();
              cell.drift = spec.drift_arm(d).describe();
              cell.drifting = spec.drift_arm(d).drifting();
              cell.byz = spec.byz_arm(b).describe();
              cell.byzantine = spec.byz_arm(b).byzantine();
              report.cells.push_back(std::move(cell));
            }

  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    const TaskSpec& task = result.tasks[i];
    const TaskResult& r = result.results[i];
    CellStats& cell = report.cells.at(task.cell_id(spec));
    ++cell.tasks;
    ++report.tasks;
    cell.cpu_seconds += r.seconds;
    report.cpu_seconds += r.seconds;
    if (!r.ok) {
      ++cell.failures;
      ++report.failures;
      continue;
    }
    cell.events += r.events;
    cell.delivered += r.delivered;
    cell.dropped += r.dropped;
    report.events += r.events;
    cell.realized_max = std::max(cell.realized_max, r.realized);
    if (r.drifting) {
      cell.drift_epochs = std::max(cell.drift_epochs, r.drift_epochs);
      cell.drift_window_max = std::max(cell.drift_window_max, r.drift_window);
      cell.drift_bound_max = std::max(cell.drift_bound_max, r.drift_bound);
      cell.drift_slope_max = std::max(cell.drift_slope_max, r.drift_slope);
    }
    if (r.byzantine) {
      cell.byz_epochs += r.byz_epochs;
      cell.byz_detected += r.byz_detected;
      cell.byz_violations += r.byz_violations;
      cell.byz_lied_stamps += r.byz_lied_stamps;
      cell.byz_quorum_dropped =
          std::max(cell.byz_quorum_dropped, r.byz_quorum_dropped);
    }
    if (r.zoned) {
      cell.zone_count = std::max(cell.zone_count, r.zone_count);
      cell.zone_max_size = std::max(cell.zone_max_size, r.zone_max_size);
      cell.zone_a_max_max = std::max(cell.zone_a_max_max, r.zone_a_max_max);
      cell.realized_intra_max =
          std::max(cell.realized_intra_max, r.realized_intra);
      cell.realized_cross_max =
          std::max(cell.realized_cross_max, r.realized_cross);
    }
    if (r.bounded) {
      ++cell.bounded;
      ++report.bounded;
      cell.claimed.add(r.claimed);
      cell.optimality_gap.add(r.claimed - r.realized);
      if (r.claimed > 0.0) cell.ratio.add(r.realized / r.claimed);
      cell.thm46_max_gap = std::max(cell.thm46_max_gap, r.thm46_gap);
      if (!cell.faulty)
        report.thm46_max_gap =
            std::max(report.thm46_max_gap, r.thm46_gap);
      if (!r.sound) {
        ++cell.soundness_violations;
        ++report.soundness_violations;
      }
    }
  }
  return report;
}

bool report_ok(const CampaignReport& report, double tolerance) {
  if (report.failures != 0 || report.soundness_violations != 0) return false;
  for (const CellStats& cell : report.cells) {
    if (!cell.faulty && cell.thm46_max_gap > tolerance) return false;
    // A detected Byzantine epoch is an outage: the pipeline (correctly)
    // refused to certify, but the honest agents got no corrections.  An
    // arm only validates when its estimator rode out every epoch.
    if (cell.byz_detected != 0) return false;
  }
  return true;
}

void write_report_json(std::ostream& os, const CampaignReport& report,
                       bool include_timing) {
  const CampaignSpec& spec = report.spec;
  os << "{\n  \"schema_version\": 1,\n  \"tool\": \"cs_lab\",\n"
     << "  \"campaign\": {\n"
     << "    \"name\": " << quoted(spec.name) << ",\n"
     << "    \"seed\": " << spec.seed << ",\n"
     << "    \"seeds_per_cell\": " << spec.seeds_per_cell << ",\n"
     << "    \"protocol\": " << quoted(spec.protocol.describe()) << ",\n"
     << "    \"skew\": " << fmt(spec.skew) << ",\n"
     << "    \"delay_scale\": " << fmt(spec.delay_scale) << ",\n"
     << "    \"cells\": " << report.cells.size() << ",\n"
     << "    \"tasks\": " << report.tasks << "\n  },\n"
     << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellStats& c = report.cells[i];
    os << "    {\n      \"cell\": " << c.cell << ",\n"
       << "      \"topology\": " << quoted(c.topology) << ",\n"
       << "      \"nodes\": " << c.nodes << ",\n"
       << "      \"mix\": " << quoted(c.mix) << ",\n"
       << "      \"faults\": " << quoted(c.faults) << ",\n"
       << "      \"zones\": " << quoted(c.zones) << ",\n"
       << "      \"zoned\": " << (c.zoned ? "true" : "false") << ",\n"
       << "      \"drift\": " << quoted(c.drift) << ",\n"
       << "      \"drifting\": " << (c.drifting ? "true" : "false") << ",\n"
       << "      \"tasks\": " << c.tasks << ",\n"
       << "      \"failures\": " << c.failures << ",\n"
       << "      \"bounded\": " << c.bounded << ",\n"
       << "      \"soundness_violations\": " << c.soundness_violations
       << ",\n"
       << "      \"thm46_max_gap\": " << fmt(c.thm46_max_gap) << ",\n";
    series_json(os, "      ", "claimed_precision", c.claimed);
    os << ",\n";
    series_json(os, "      ", "realized_over_claimed", c.ratio);
    os << ",\n";
    series_json(os, "      ", "optimality_gap", c.optimality_gap);
    os << ",\n      \"realized_max\": " << fmt(c.realized_max) << ",\n"
       << "      \"zone_count\": " << c.zone_count << ",\n"
       << "      \"zone_max_size\": " << c.zone_max_size << ",\n"
       << "      \"zone_a_max_max\": " << fmt(c.zone_a_max_max) << ",\n"
       << "      \"realized_intra_max\": " << fmt(c.realized_intra_max)
       << ",\n"
       << "      \"realized_cross_max\": " << fmt(c.realized_cross_max)
       << ",\n"
       << "      \"drift_epochs\": " << c.drift_epochs << ",\n"
       << "      \"drift_window_max\": " << fmt(c.drift_window_max) << ",\n"
       << "      \"drift_bound_max\": " << fmt(c.drift_bound_max) << ",\n"
       << "      \"drift_slope_max\": " << fmt(c.drift_slope_max) << ",\n"
       << "      \"byz\": " << quoted(c.byz) << ",\n"
       << "      \"byzantine\": " << (c.byzantine ? "true" : "false")
       << ",\n"
       << "      \"byz_epochs\": " << c.byz_epochs << ",\n"
       << "      \"byz_detected\": " << c.byz_detected << ",\n"
       << "      \"byz_violations\": " << c.byz_violations << ",\n"
       << "      \"byz_lied_stamps\": " << c.byz_lied_stamps << ",\n"
       << "      \"byz_quorum_dropped\": " << c.byz_quorum_dropped << ",\n"
       << "      \"events\": " << c.events << ",\n"
       << "      \"delivered\": " << c.delivered << ",\n"
       << "      \"dropped\": " << c.dropped << "\n    }"
       << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"totals\": {\n"
     << "    \"tasks\": " << report.tasks << ",\n"
     << "    \"failures\": " << report.failures << ",\n"
     << "    \"bounded\": " << report.bounded << ",\n"
     << "    \"soundness_violations\": " << report.soundness_violations
     << ",\n"
     << "    \"thm46_max_gap\": " << fmt(report.thm46_max_gap) << ",\n"
     << "    \"events\": " << report.events << "\n  }";
  if (include_timing) {
    os << ",\n  \"timing\": {\n"
       << "    \"threads\": " << report.threads << ",\n"
       << "    \"wall_seconds\": " << fmt(report.wall_seconds) << ",\n"
       << "    \"cpu_seconds\": " << fmt(report.cpu_seconds) << ",\n"
       << "    \"tasks_per_second\": "
       << fmt(report.wall_seconds > 0.0
                  ? static_cast<double>(report.tasks) / report.wall_seconds
                  : 0.0)
       << ",\n    \"events_per_second\": "
       << fmt(report.wall_seconds > 0.0
                  ? static_cast<double>(report.events) / report.wall_seconds
                  : 0.0)
       << ",\n    \"parallel_efficiency\": "
       << fmt(report.wall_seconds > 0.0 && report.threads > 0
                  ? report.cpu_seconds /
                        (report.wall_seconds *
                         static_cast<double>(report.threads))
                  : 0.0)
       << "\n  }";
  }
  os << "\n}\n";
}

void write_report_csv(std::ostream& os, const CampaignReport& report) {
  // Axis columns append at the end (zones, then drift): the first six
  // columns are a pinned interface consumed by downstream tooling (and the
  // format tests).
  os << "cell,topology,nodes,mix,faults,tasks,failures,bounded,"
        "soundness_violations,thm46_max_gap,claimed_mean,claimed_p50,"
        "claimed_p95,claimed_p99,ratio_mean,ratio_p95,gap_p50,gap_p95,"
        "gap_p99,realized_max,events,delivered,dropped,zones,zone_count,"
        "zone_max_size,zone_a_max_max,realized_intra_max,"
        "realized_cross_max,drift,drift_epochs,drift_window_max,"
        "drift_bound_max,drift_slope_max,byz,byz_epochs,byz_detected,"
        "byz_violations,byz_lied_stamps,byz_quorum_dropped\n";
  for (const CellStats& c : report.cells) {
    os << c.cell << ',' << csv_field(c.topology) << ',' << c.nodes << ','
       << csv_field(c.mix) << ',' << csv_field(c.faults) << ',' << c.tasks
       << ','
       << c.failures << ',' << c.bounded << ',' << c.soundness_violations
       << ',' << fmt(c.thm46_max_gap) << ','
       << fmt(c.claimed.acc.count() == 0 ? 0.0 : c.claimed.acc.mean()) << ','
       << fmt(c.claimed.quantiles.quantile(0.50)) << ','
       << fmt(c.claimed.quantiles.quantile(0.95)) << ','
       << fmt(c.claimed.quantiles.quantile(0.99)) << ','
       << fmt(c.ratio.acc.count() == 0 ? 0.0 : c.ratio.acc.mean()) << ','
       << fmt(c.ratio.quantiles.quantile(0.95)) << ','
       << fmt(c.optimality_gap.quantiles.quantile(0.50)) << ','
       << fmt(c.optimality_gap.quantiles.quantile(0.95)) << ','
       << fmt(c.optimality_gap.quantiles.quantile(0.99)) << ','
       << fmt(c.realized_max) << ',' << c.events << ',' << c.delivered << ','
       << c.dropped << ',' << csv_field(c.zones) << ',' << c.zone_count
       << ',' << c.zone_max_size << ',' << fmt(c.zone_a_max_max) << ','
       << fmt(c.realized_intra_max) << ',' << fmt(c.realized_cross_max)
       << ',' << csv_field(c.drift) << ',' << c.drift_epochs << ','
       << fmt(c.drift_window_max) << ',' << fmt(c.drift_bound_max) << ','
       << fmt(c.drift_slope_max) << ',' << csv_field(c.byz) << ','
       << c.byz_epochs << ',' << c.byz_detected << ',' << c.byz_violations
       << ',' << c.byz_lied_stamps << ',' << c.byz_quorum_dropped << '\n';
  }
}

void print_report(std::ostream& os, const CampaignReport& report,
                  bool include_timing) {
  Table table({"cell", "topology", "mix", "faults", "zones", "drift", "byz",
               "tasks", "fail", "bounded", "A^max p50", "ratio p95",
               "thm4.6 gap"});
  for (const CellStats& c : report.cells)
    table.add_row({std::to_string(c.cell), c.topology, c.mix, c.faults,
                   c.zones, c.drift, c.byz, std::to_string(c.tasks),
                   std::to_string(c.failures), std::to_string(c.bounded),
                   Table::num(c.claimed.quantiles.quantile(0.50), 6),
                   Table::num(c.ratio.quantiles.quantile(0.95), 3),
                   Table::num(c.thm46_max_gap, 12)});
  table.print(os);
  os << "\ncampaign '" << report.spec.name << "': " << report.tasks
     << " tasks, " << report.failures << " failures, "
     << report.soundness_violations << " soundness violations, "
     << "max Thm 4.6 gap " << fmt(report.thm46_max_gap)
     << " (fault-free cells)\n";
  if (include_timing)
    os << "threads " << report.threads << ", wall "
       << Table::num(report.wall_seconds, 2) << " s, cpu "
       << Table::num(report.cpu_seconds, 2) << " s, "
       << Table::num(report.wall_seconds > 0.0
                         ? static_cast<double>(report.events) /
                               report.wall_seconds
                         : 0.0,
                     0)
       << " events/s, parallel efficiency "
       << Table::num(report.wall_seconds > 0.0 && report.threads > 0
                         ? report.cpu_seconds /
                               (report.wall_seconds *
                                static_cast<double>(report.threads))
                         : 0.0,
                     2)
       << "\n";
}

}  // namespace cs::lab
