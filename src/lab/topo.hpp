// Procedural topology families for experiment campaigns.
//
// graph/topology.hpp covers the hand-picked shapes the original experiment
// binaries sweep; campaigns need *parameterized families* that scale along
// named axes.  This header adds the structured families named by the
// related work — odd-ary m-toroids (Frank & Welch, arXiv:1807.05139),
// hypercubes, preferential-attachment and Erdős–Rényi random graphs, and
// hierarchical clustered ("datacenter") fabrics — plus a small spec grammar
// (`parse_topo_spec`) so campaign files and the cs_lab CLI can name any
// instance as a single token string like "toroid 5x5x5" or "ba 64 2".
//
// Determinism contract: deterministic families ignore the Rng entirely;
// random families (er, ba, tree, wan) consume *only* the Rng handed in, so
// an instance is a pure function of (spec, seed).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/topology.hpp"

namespace cs::lab {

/// m-dimensional torus with side lengths `dims` (node count = product).
/// Each node links to its +1 neighbor modulo the side length in every
/// dimension; a dimension of side 1 contributes no links, side 2 contributes
/// a single (deduplicated) link per pair.  All sides odd >= 3 makes it the
/// odd-ary m-toroid of Frank & Welch.
Topology make_toroid(std::span<const std::size_t> dims);

/// 2-D convenience wrapper: a width x height torus.
Topology make_torus(std::size_t width, std::size_t height);

/// dim-dimensional hypercube: 2^dim nodes, links between ids differing in
/// exactly one bit.  dim 0 is a single node.
Topology make_hypercube(std::size_t dim);

/// Barabási–Albert preferential attachment: a complete core of
/// min(m + 1, n) nodes, then each new node attaches to `m` distinct
/// existing nodes chosen proportionally to degree.  Requires m >= 1.
Topology make_barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// G(n, p) conditioned on connectivity (alias of make_connected_gnp, named
/// for campaign specs).
Topology make_erdos_renyi(std::size_t n, double p, Rng& rng);

/// Hierarchical clustered ("datacenter") fabric: `spines` spine nodes,
/// `racks` top-of-rack nodes each linked to every spine, and `hosts` leaf
/// nodes per rack each linked to its ToR.  Node order: spines, ToRs, hosts
/// (rack-major).  Requires spines >= 1, racks >= 1, hosts >= 0.
Topology make_datacenter(std::size_t spines, std::size_t racks,
                         std::size_t hosts);

// ---- Spec grammar --------------------------------------------------------

/// A parsed one-line topology description.  Grammar (family first, then
/// positional parameters):
///
///   line N | ring N | star N | complete N | circulant N | tree N | wan N
///       (circulant: ring of N nodes with stride-{1,2,3} chords — the
///        6-connected shape the quorum estimator's path diversity needs)
///   grid WxH            2-D open grid
///   torus WxH           2-D torus
///   toroid K1xK2x...    m-dimensional torus
///   hypercube D         2^D nodes
///   er N P              Erdős–Rényi G(N, P) conditioned on connectivity
///   ba N M              Barabási–Albert, M attachments per node
///   dc S R H            datacenter: S spines, R racks, H hosts per rack
///
/// `describe()` round-trips back to the canonical spec string.
struct TopoSpec {
  std::string family;
  std::vector<std::size_t> dims;  ///< sizes: N, WxH, K1x...; D; S R H; N M
  double p{0.0};                  ///< er only

  /// Canonical spec string ("toroid 3x3x3").
  std::string describe() const;

  /// Node count of the instance this spec generates (identical across
  /// seeds — all families have deterministic node counts).
  std::size_t node_count() const;

  /// True iff the generated link set depends on the Rng.
  bool randomized() const;

  /// True iff this is an odd-ary m-toroid (family "toroid"/"torus"/"ring"
  /// with every side odd and >= 3).
  bool odd_ary_toroid() const;
};

/// Parses "family params..." (see TopoSpec).  Throws cs::Error naming the
/// offending token on malformed input.
TopoSpec parse_topo_spec(const std::string& text);

/// Instantiates a spec.  Random families draw only from `rng`.
Topology make_topology(const TopoSpec& spec, Rng& rng);

/// All family names understood by parse_topo_spec, for help text and tests.
std::vector<std::string> topo_families();

}  // namespace cs::lab
