#include "trace/writer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "io/views_io.hpp"

namespace cs {
namespace {

TraceEvent make_event(TraceEvent::Kind kind, RealTime t, ProcessorId a,
                      ProcessorId b, MessageId msg) {
  TraceEvent ev;
  ev.kind = kind;
  ev.real = t;
  ev.a = a;
  ev.b = b;
  ev.msg = msg;
  return ev;
}

}  // namespace

void TraceWriter::begin_run(const SystemModel& model,
                            const SimOptions& options) {
  trace_.processors = model.processor_count();
  trace_.seed = options.seed;
  trace_.starts.clear();
  trace_.starts.reserve(options.start_offsets.size());
  for (const Duration offset : options.start_offsets)
    trace_.starts.push_back((RealTime{} + offset).sec);
  trace_.rates.clear();
  for (const double r : options.clock_rates) trace_.rates.push_back(r);

  std::ostringstream model_os;
  save_model(model_os, model);
  trace_.model_text = model_os.str();
}

void TraceWriter::record_send(RealTime t, ProcessorId from, ProcessorId to,
                              MessageId msg, ClockTime when) {
  TraceEvent ev = make_event(TraceEvent::Kind::kSend, t, from, to, msg);
  ev.clock = when;
  trace_.events.push_back(ev);
}

void TraceWriter::record_delivery(RealTime t, ProcessorId to,
                                  ProcessorId from, MessageId msg,
                                  ClockTime when) {
  TraceEvent ev = make_event(TraceEvent::Kind::kDeliver, t, to, from, msg);
  ev.clock = when;
  trace_.events.push_back(ev);
}

void TraceWriter::record_loss(RealTime t, ProcessorId from, ProcessorId to,
                              MessageId msg, LossCause cause) {
  TraceEvent ev = make_event(TraceEvent::Kind::kLoss, t, from, to, msg);
  ev.cause = cause;
  trace_.events.push_back(ev);
}

void TraceWriter::record_duplicate(RealTime t, ProcessorId from,
                                   ProcessorId to, MessageId msg,
                                   double lag) {
  TraceEvent ev = make_event(TraceEvent::Kind::kDuplicate, t, from, to, msg);
  ev.extra = lag;
  trace_.events.push_back(ev);
}

void TraceWriter::record_spike(RealTime t, ProcessorId from, ProcessorId to,
                               MessageId msg, double extra) {
  TraceEvent ev = make_event(TraceEvent::Kind::kSpike, t, from, to, msg);
  ev.extra = extra;
  trace_.events.push_back(ev);
}

void TraceWriter::record_crash_drop(RealTime t, ProcessorId to,
                                    ProcessorId from, MessageId msg) {
  trace_.events.push_back(
      make_event(TraceEvent::Kind::kCrashDrop, t, to, from, msg));
}

void TraceWriter::record_timer_set(RealTime t, ProcessorId pid, ClockTime now,
                                   ClockTime at) {
  TraceEvent ev = make_event(TraceEvent::Kind::kTimerSet, t, pid, pid, 0);
  ev.b = 0;
  ev.clock = now;
  ev.timer_at = at;
  trace_.events.push_back(ev);
}

void TraceWriter::record_timer_fire(RealTime t, ProcessorId pid,
                                    ClockTime when, ClockTime at) {
  TraceEvent ev = make_event(TraceEvent::Kind::kTimerFire, t, pid, pid, 0);
  ev.b = 0;
  ev.clock = when;
  ev.timer_at = at;
  trace_.events.push_back(ev);
}

void TraceWriter::record_timer_suppressed(RealTime t, ProcessorId pid,
                                          ClockTime at) {
  TraceEvent ev =
      make_event(TraceEvent::Kind::kTimerSuppressed, t, pid, pid, 0);
  ev.b = 0;
  ev.timer_at = at;
  trace_.events.push_back(ev);
}

void TraceWriter::end_run(const SimResult& result) {
  trace_.tallies["delivered"] = result.delivered_messages;
  trace_.tallies["lost"] = result.lost_messages;
  trace_.tallies["fired_timers"] = result.fired_timers;
  trace_.tallies["fault_dropped"] = result.fault_dropped_messages;
  trace_.tallies["duplicated"] = result.duplicated_messages;
  trace_.tallies["crash_dropped"] = result.crash_dropped_deliveries;
  trace_.tallies["suppressed_timers"] = result.suppressed_timers;
}

void TraceWriter::plan(const ReplayPlan& plan) {
  trace_.plan = plan;
  trace_.plan.options.sync.metrics = nullptr;  // never serialized
}

void TraceWriter::outcome(const EpochOutcome& epoch) {
  trace_.recorded.push_back(epoch_record(epoch));
}

void TraceWriter::counters(const Metrics& metrics) {
  trace_.counters = metrics.counters();
}

void TraceWriter::finish() {
  if (finished_) throw Error("TraceWriter::finish() called twice");
  finished_ = true;
  if (os_ != nullptr) {
    save_trace(*os_, trace_);
    return;
  }
  save_trace_file(path_, trace_);
}

RecordResult record_run(const SystemModel& model,
                        const AutomatonFactory& factory,
                        const SimOptions& sim_options, const ReplayPlan& plan,
                        TraceWriter& writer) {
  RecordResult result;
  result.plan = plan;
  result.plan.options.sync.metrics = &result.metrics;

  SimOptions options = sim_options;
  options.trace = &writer;
  options.metrics = &result.metrics;
  result.sim = simulate(model, factory, options);

  const std::vector<View> views = result.sim.execution.views();
  if (result.plan.boundaries.empty()) {
    // One epoch over everything: a boundary safely past the last event on
    // any clock (View::prefix keeps events strictly before the cutoff).
    double last = 0.0;
    for (const View& v : views)
      for (const ViewEvent& e : v.events) last = std::max(last, e.when.sec);
    result.plan.boundaries.push_back(ClockTime{last + 1.0});
  }

  result.epochs =
      result.plan.incremental
          ? epochal_synchronize_incremental(model, views,
                                            result.plan.boundaries,
                                            result.plan.options)
          : epochal_synchronize(model, views, result.plan.boundaries,
                                result.plan.options);

  writer.plan(result.plan);
  for (const EpochOutcome& epoch : result.epochs) writer.outcome(epoch);
  writer.counters(result.metrics);
  writer.finish();
  return result;
}

}  // namespace cs
