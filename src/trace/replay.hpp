// Deterministic replay and structural diff of execution traces.
//
// replay() re-drives the full epoch pipeline — view reconstruction, m̃ls
// estimation, MlsCarry staleness carry-forward, the APSP closure and
// SHIFTS, via step_mls/synchronize_mls — from a trace alone: no simulator,
// no RNG.  Every quantity the pipeline produces is recomputed from the
// recorded clock times, which round-trip exactly, so a healthy replay
// reproduces bit-identical per-processor corrections, achieved precision,
// and the "fault.*"/pipeline counters; any difference against the
// recording is reported as a divergence.  That makes a recorded trace a
// self-verifying regression artifact (tests/data/*.trace, CI golden-trace
// job) and a debugging instrument: perturb one record, replay, and read
// off the first divergence (examples/trace_replay.cpp).
//
// diff_traces() is the offline comparator: a structural, section-by-
// section comparison of two traces with first-divergence reporting per
// section — what `cs_sync diff` prints.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cs {

/// Everything a replay recomputed, plus the divergence report against the
/// trace's own recording.
struct ReplayResult {
  std::vector<View> views;           ///< rebuilt from the event records
  std::vector<EpochOutcome> epochs;  ///< recomputed by the epoch pipeline
  Metrics metrics;  ///< fault.* tallied from events + recomputed pipeline
                    ///< counters; compare with the recording via counters
  std::vector<std::string> divergences;

  bool matches_recording() const { return divergences.empty(); }
};

/// Rebuild every processor's View from the trace's event records (one
/// in-order pass; see the hook order contract in sim/trace_sink.hpp).
/// Bit-identical to Execution::views() of the recorded run.
std::vector<View> views_from_trace(const Trace& trace);

/// Replay the trace and verify it against its own recorded outcomes,
/// counters and tallies.  Traces recorded without outcomes (capture-only)
/// replay with an empty divergence list for those sections.
/// Throws cs::Error on a malformed trace (bad embedded model, event for an
/// out-of-range processor).
ReplayResult replay(const Trace& trace);

/// Structural comparison: first divergence per section (header, starts,
/// rates, model, plan, boundaries, events, tallies, outcomes, counters),
/// capped at `max_reports` messages.  Empty result = structurally equal.
std::vector<std::string> diff_traces(const Trace& a, const Trace& b,
                                     std::size_t max_reports = 16);

/// The trace with its recorded outcomes/counters/tallies replaced by the
/// replayed ones — what `cs_sync replay --rerecord` writes.  A re-recorded
/// trace diffs clean against the original iff the replay matched.
Trace rerecorded(const Trace& trace, const ReplayResult& result);

}  // namespace cs
