// Recording side of the trace subsystem.
//
// TraceWriter implements the simulator's TraceSink: point
// SimOptions::trace at one, run simulate(), then append the replay plan,
// the per-epoch outcomes and the counters, and finish() to serialize.  The
// writer accumulates the full Trace in memory and dumps it in one pass, so
// there is exactly one formatter (save_trace) and one parser (load_trace)
// for the format.
//
// record_run() is the one-call driver the CLI, tests and examples use:
// simulate → epoch pipeline → fully recorded trace, with every
// deterministic counter captured for replay verification.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace cs {

class TraceWriter final : public TraceSink {
 public:
  /// Serialize to `os` on finish().  The stream must outlive the writer.
  explicit TraceWriter(std::ostream& os) : os_(&os) {}

  /// Serialize to `path` on finish().
  explicit TraceWriter(std::string path) : path_(std::move(path)) {}

  // TraceSink (called by the simulator):
  void begin_run(const SystemModel& model, const SimOptions& options) override;
  void record_send(RealTime t, ProcessorId from, ProcessorId to,
                   MessageId msg, ClockTime when) override;
  void record_delivery(RealTime t, ProcessorId to, ProcessorId from,
                       MessageId msg, ClockTime when) override;
  void record_loss(RealTime t, ProcessorId from, ProcessorId to,
                   MessageId msg, LossCause cause) override;
  void record_duplicate(RealTime t, ProcessorId from, ProcessorId to,
                        MessageId msg, double lag) override;
  void record_spike(RealTime t, ProcessorId from, ProcessorId to,
                    MessageId msg, double extra) override;
  void record_crash_drop(RealTime t, ProcessorId to, ProcessorId from,
                         MessageId msg) override;
  void record_timer_set(RealTime t, ProcessorId pid, ClockTime now,
                        ClockTime at) override;
  void record_timer_fire(RealTime t, ProcessorId pid, ClockTime when,
                         ClockTime at) override;
  void record_timer_suppressed(RealTime t, ProcessorId pid,
                               ClockTime at) override;
  void end_run(const SimResult& result) override;

  // Post-simulation sections (any order; finish() serializes canonically):
  void plan(const ReplayPlan& plan);
  void outcome(const EpochOutcome& epoch);
  void counters(const Metrics& metrics);

  /// The accumulated trace (valid any time; complete after the sections
  /// above were fed).
  const Trace& trace() const { return trace_; }

  /// Serialize the accumulated trace to the target stream/file.  Throws
  /// cs::Error if called twice or if the file cannot be written.
  void finish();

 private:
  std::ostream* os_{nullptr};
  std::string path_;
  Trace trace_;
  bool finished_{false};
};

/// One-call record driver: simulate under `sim_options` (with this writer
/// wired in as the trace sink and a fresh Metrics as the sink for all
/// "fault.*" and pipeline counters), drive the epoch pipeline per `plan`,
/// record outcomes + counters, and finish() the writer.
///
/// If `plan.boundaries` is empty, a single epoch boundary is synthesized
/// one second past the last recorded clock time (every event is in the
/// cut), and the synthesized boundary is what gets recorded.
///
/// Any `metrics`/`trace` sinks already present in `sim_options` and
/// `plan.options.sync` are replaced by the writer's own.
struct RecordResult {
  SimResult sim;
  std::vector<EpochOutcome> epochs;
  Metrics metrics;
  ReplayPlan plan;  ///< the plan as recorded (boundaries filled in)
};

RecordResult record_run(const SystemModel& model,
                        const AutomatonFactory& factory,
                        const SimOptions& sim_options, const ReplayPlan& plan,
                        TraceWriter& writer);

}  // namespace cs
