#include "trace/replay.hpp"

#include <cstdio>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace cs {
namespace {

std::string num(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Bounded divergence collector: keeps the first `cap` messages and counts
/// the rest, so reports stay readable on badly diverged inputs.
class Report {
 public:
  explicit Report(std::size_t cap) : cap_(cap) {}

  void add(const std::string& msg) {
    if (messages_.size() < cap_)
      messages_.push_back(msg);
    else
      ++suppressed_;
  }

  bool full() const { return messages_.size() >= cap_; }

  std::vector<std::string> take() {
    if (suppressed_ > 0)
      messages_.push_back("... " + std::to_string(suppressed_) +
                          " further divergences suppressed");
    return std::move(messages_);
  }

 private:
  std::size_t cap_;
  std::size_t suppressed_{0};
  std::vector<std::string> messages_;
};

void compare_u64(Report& out, const std::string& what, std::uint64_t a,
                 std::uint64_t b) {
  if (a != b)
    out.add(what + ": " + std::to_string(a) + " vs " + std::to_string(b));
}

void compare_num(Report& out, const std::string& what, double a, double b) {
  if (!(a == b))  // bit-level intent; traces never contain NaN
    out.add(what + ": " + num(a) + " vs " + num(b));
}

/// Field-level comparison of one epoch's recorded outcome rows; used both
/// by replay verification ("recorded vs replayed") and by trace diff.
void compare_records(Report& out, const std::string& prefix,
                     const EpochRecord& a, const EpochRecord& b) {
  compare_num(out, prefix + " boundary", a.boundary.sec, b.boundary.sec);
  compare_num(out, prefix + " precision", a.precision.value(),
              b.precision.value());
  compare_u64(out, prefix + " carried_edges", a.carried_edges,
              b.carried_edges);
  compare_u64(out, prefix + " observed_directions", a.observed_directions,
              b.observed_directions);
  compare_u64(out, prefix + " total_directions", a.total_directions,
              b.total_directions);
  compare_u64(out, prefix + " pairing.paired", a.pairing.paired,
              b.pairing.paired);
  compare_u64(out, prefix + " pairing.orphan_receives",
              a.pairing.orphan_receives, b.pairing.orphan_receives);
  compare_u64(out, prefix + " pairing.duplicate_receives",
              a.pairing.duplicate_receives, b.pairing.duplicate_receives);
  compare_u64(out, prefix + " pairing.unreceived_sends",
              a.pairing.unreceived_sends, b.pairing.unreceived_sends);
  compare_u64(out, prefix + " component count", a.component_precision.size(),
              b.component_precision.size());
  if (a.component_precision.size() == b.component_precision.size())
    for (std::size_t c = 0; c < a.component_precision.size(); ++c)
      compare_num(out, prefix + " component_precision[" + std::to_string(c) +
                           "]",
                  a.component_precision[c], b.component_precision[c]);
  compare_u64(out, prefix + " corrections count", a.corrections.size(),
              b.corrections.size());
  if (a.corrections.size() == b.corrections.size())
    for (std::size_t p = 0; p < a.corrections.size(); ++p)
      compare_num(out, prefix + " corrections[" + std::to_string(p) + "]",
                  a.corrections[p], b.corrections[p]);
}

void compare_map(Report& out, const std::string& what,
                 const std::map<std::string, std::uint64_t>& a,
                 const std::map<std::string, std::uint64_t>& b) {
  for (const auto& [name, value] : a) {
    const auto it = b.find(name);
    if (it == b.end())
      out.add(what + " '" + name + "': " + std::to_string(value) +
              " vs <absent>");
    else if (it->second != value)
      out.add(what + " '" + name + "': " + std::to_string(value) + " vs " +
              std::to_string(it->second));
  }
  for (const auto& [name, value] : b)
    if (a.find(name) == a.end())
      out.add(what + " '" + name + "': <absent> vs " +
              std::to_string(value));
}

/// The simulator tallies implied by the event records alone.
std::map<std::string, std::uint64_t> tallies_of_events(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, std::uint64_t> t{
      {"delivered", 0},      {"lost", 0},          {"fired_timers", 0},
      {"fault_dropped", 0},  {"duplicated", 0},    {"crash_dropped", 0},
      {"suppressed_timers", 0}};
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case TraceEvent::Kind::kDeliver: ++t["delivered"]; break;
      case TraceEvent::Kind::kTimerFire: ++t["fired_timers"]; break;
      case TraceEvent::Kind::kDuplicate: ++t["duplicated"]; break;
      case TraceEvent::Kind::kCrashDrop: ++t["crash_dropped"]; break;
      case TraceEvent::Kind::kTimerSuppressed: ++t["suppressed_timers"]; break;
      case TraceEvent::Kind::kLoss:
        if (ev.cause == LossCause::kSampler)
          ++t["lost"];
        else
          ++t["fault_dropped"];
        break;
      case TraceEvent::Kind::kSend:
      case TraceEvent::Kind::kSpike:
      case TraceEvent::Kind::kTimerSet:
        break;
    }
  }
  return t;
}

}  // namespace

std::vector<View> views_from_trace(const Trace& trace) {
  std::vector<View> views(trace.processors);
  for (ProcessorId p = 0; p < trace.processors; ++p) {
    views[p].pid = p;
    ViewEvent start;
    start.kind = EventKind::kStart;
    start.when = ClockTime{0.0};
    views[p].events.push_back(start);
  }
  auto view_of = [&](ProcessorId pid) -> View& {
    if (pid >= trace.processors)
      throw Error("trace event names processor " + std::to_string(pid) +
                  " but the trace declares only " +
                  std::to_string(trace.processors));
    return views[pid];
  };
  for (const TraceEvent& ev : trace.events) {
    ViewEvent ve;
    switch (ev.kind) {
      case TraceEvent::Kind::kSend:
        ve.kind = EventKind::kSend;
        ve.when = ev.clock;
        ve.msg = ev.msg;
        ve.peer = ev.b;
        view_of(ev.a).events.push_back(ve);
        break;
      case TraceEvent::Kind::kDeliver:
        ve.kind = EventKind::kReceive;
        ve.when = ev.clock;
        ve.msg = ev.msg;
        ve.peer = ev.b;
        view_of(ev.a).events.push_back(ve);
        break;
      case TraceEvent::Kind::kTimerSet:
        ve.kind = EventKind::kTimerSet;
        ve.when = ev.clock;
        ve.timer_at = ev.timer_at;
        view_of(ev.a).events.push_back(ve);
        break;
      case TraceEvent::Kind::kTimerFire:
        ve.kind = EventKind::kTimerFire;
        ve.when = ev.clock;
        ve.timer_at = ev.timer_at;
        view_of(ev.a).events.push_back(ve);
        break;
      case TraceEvent::Kind::kLoss:
      case TraceEvent::Kind::kCrashDrop:
      case TraceEvent::Kind::kDuplicate:
      case TraceEvent::Kind::kSpike:
      case TraceEvent::Kind::kTimerSuppressed:
        break;  // no processor observed anything
    }
  }
  return views;
}

ReplayResult replay(const Trace& trace) {
  ReplayResult result;
  const SystemModel model = trace.model();
  if (model.processor_count() != trace.processors)
    throw Error("embedded model declares " +
                std::to_string(model.processor_count()) +
                " processors, trace header says " +
                std::to_string(trace.processors));
  result.views = views_from_trace(trace);

  // The "fault.*" counters are a pure function of the event records — tally
  // them exactly as the injector/simulator would have.
  for (const TraceEvent& ev : trace.events) {
    switch (ev.kind) {
      case TraceEvent::Kind::kLoss:
        if (ev.cause == LossCause::kFaultDrop)
          result.metrics.increment("fault.dropped");
        else if (ev.cause == LossCause::kLinkDown)
          result.metrics.increment("fault.link_down_drops");
        break;
      case TraceEvent::Kind::kSpike:
        result.metrics.increment("fault.delay_spikes");
        break;
      case TraceEvent::Kind::kDuplicate:
        result.metrics.increment("fault.duplicated");
        break;
      case TraceEvent::Kind::kCrashDrop:
        result.metrics.increment("fault.crash_dropped_deliveries");
        break;
      case TraceEvent::Kind::kTimerSuppressed:
        result.metrics.increment("fault.suppressed_timers");
        break;
      default:
        break;
    }
  }

  EpochOptions options = trace.plan.options;
  options.sync.metrics = &result.metrics;
  result.epochs =
      trace.plan.incremental
          ? epochal_synchronize_incremental(model, result.views,
                                            trace.plan.boundaries, options)
          : epochal_synchronize(model, result.views, trace.plan.boundaries,
                                options);

  Report report(64);
  if (!trace.recorded.empty()) {
    compare_u64(report, "epoch count", trace.recorded.size(),
                result.epochs.size());
    const std::size_t n =
        std::min(trace.recorded.size(), result.epochs.size());
    for (std::size_t k = 0; k < n; ++k)
      compare_records(report, "epoch " + std::to_string(k),
                      trace.recorded[k], epoch_record(result.epochs[k]));
  }
  if (!trace.counters.empty())
    compare_map(report, "counter", trace.counters,
                result.metrics.counters());
  if (!trace.tallies.empty())
    compare_map(report, "tally", trace.tallies,
                tallies_of_events(trace.events));
  result.divergences = report.take();
  return result;
}

std::vector<std::string> diff_traces(const Trace& a, const Trace& b,
                                     std::size_t max_reports) {
  Report report(max_reports);
  compare_u64(report, "processors", a.processors, b.processors);
  compare_u64(report, "seed", a.seed, b.seed);

  compare_u64(report, "start count", a.starts.size(), b.starts.size());
  if (a.starts.size() == b.starts.size())
    for (std::size_t p = 0; p < a.starts.size(); ++p)
      compare_num(report, "start " + std::to_string(p), a.starts[p],
                  b.starts[p]);
  compare_u64(report, "rate count", a.rates.size(), b.rates.size());
  if (a.rates.size() == b.rates.size())
    for (std::size_t p = 0; p < a.rates.size(); ++p)
      compare_num(report, "rate " + std::to_string(p), a.rates[p],
                  b.rates[p]);

  if (a.model_text != b.model_text) {
    std::istringstream sa(a.model_text), sb(b.model_text);
    std::string la, lb;
    std::size_t line = 0;
    while (true) {
      ++line;
      const bool ga = static_cast<bool>(std::getline(sa, la));
      const bool gb = static_cast<bool>(std::getline(sb, lb));
      if (!ga && !gb) break;
      if (!ga || !gb || la != lb) {
        report.add("model line " + std::to_string(line) + ": '" +
                   (ga ? la : "<eof>") + "' vs '" + (gb ? lb : "<eof>") +
                   "'");
        break;
      }
    }
  }

  if (a.plan.incremental != b.plan.incremental)
    report.add(std::string("plan pipeline: ") +
               (a.plan.incremental ? "incremental" : "rebuild") + " vs " +
               (b.plan.incremental ? "incremental" : "rebuild"));
  compare_u64(report, "plan root", a.plan.options.sync.root,
              b.plan.options.sync.root);
  compare_u64(report, "plan apsp",
              static_cast<std::uint64_t>(a.plan.options.sync.apsp),
              static_cast<std::uint64_t>(b.plan.options.sync.apsp));
  compare_u64(report, "plan cycle-mean",
              static_cast<std::uint64_t>(a.plan.options.sync.cycle_mean),
              static_cast<std::uint64_t>(b.plan.options.sync.cycle_mean));
  compare_u64(report, "plan match",
              static_cast<std::uint64_t>(a.plan.options.sync.match),
              static_cast<std::uint64_t>(b.plan.options.sync.match));
  compare_num(report, "plan window", a.plan.options.window.sec,
              b.plan.options.window.sec);
  compare_u64(report, "plan staleness carry",
              a.plan.options.staleness.carry_forward ? 1 : 0,
              b.plan.options.staleness.carry_forward ? 1 : 0);
  compare_num(report, "plan staleness widen",
              a.plan.options.staleness.widen_per_epoch,
              b.plan.options.staleness.widen_per_epoch);
  compare_u64(report, "plan staleness max age",
              a.plan.options.staleness.max_carry_epochs,
              b.plan.options.staleness.max_carry_epochs);
  compare_u64(report, "boundary count", a.plan.boundaries.size(),
              b.plan.boundaries.size());
  if (a.plan.boundaries.size() == b.plan.boundaries.size())
    for (std::size_t k = 0; k < a.plan.boundaries.size();
         ++k)
      compare_num(report, "boundary " + std::to_string(k),
                  a.plan.boundaries[k].sec, b.plan.boundaries[k].sec);

  compare_u64(report, "event count", a.events.size(), b.events.size());
  const std::size_t n_events = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < n_events; ++i)
    if (!(a.events[i] == b.events[i]))
      report.add("event " + std::to_string(i) + ": '" +
                 format_event(a.events[i]) + "' vs '" +
                 format_event(b.events[i]) + "'");

  compare_map(report, "tally", a.tallies, b.tallies);

  compare_u64(report, "outcome count", a.recorded.size(), b.recorded.size());
  const std::size_t n_rec = std::min(a.recorded.size(), b.recorded.size());
  for (std::size_t k = 0; k < n_rec; ++k)
    compare_records(report, "outcome " + std::to_string(k), a.recorded[k],
                    b.recorded[k]);

  compare_map(report, "counter", a.counters, b.counters);
  return report.take();
}

Trace rerecorded(const Trace& trace, const ReplayResult& result) {
  Trace out = trace;
  out.recorded.clear();
  for (const EpochOutcome& epoch : result.epochs)
    out.recorded.push_back(epoch_record(epoch));
  out.counters = result.metrics.counters();
  out.tallies = tallies_of_events(trace.events);
  return out;
}

}  // namespace cs
