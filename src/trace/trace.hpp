// The execution-trace data model and its versioned line-based format.
//
// A trace is the complete, replayable record of one run: the system model,
// the ground-truth per-processor start times (and clock rates, when the E9
// drift extension is in play), every event in dispatch order — sends,
// deliveries, losses with cause, fault decisions, timers — the epoch
// schedule the pipeline was driven with, and the recorded per-epoch
// outcomes and counters.  docs/TRACE.md specifies the grammar; the
// round-trip is exact (doubles print with 17 significant digits) and the
// output is line-based and diff-able, like the views/model interchange
// format it embeds (io/views_io.hpp).
//
//   chronosync-trace v1
//   processors <n> / seed <u64> / start <pid> <t> / rate <pid> <r>
//   begin model ... end model          # embedded chronosync-model v1 doc
//   pipeline/root/apsp/cycle-mean/match/window/staleness   # the replay plan
//   boundary <T_k>                     # the epoch schedule
//   event <tag> ...                    # the run, in dispatch order
//   tally <name> <value>               # simulator summary tallies
//   outcome <k> ...                    # recorded per-epoch results
//   counter <name> <value>             # recorded deterministic counters
//   end trace
//
// Replay (replay.hpp) re-derives everything below the `event` section from
// the sections above it and diffs against the recorded outcome — the
// correctness backbone for the fault/degraded paths (docs/FAULTS.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/extreal.hpp"
#include "core/epochs.hpp"
#include "model/ids.hpp"
#include "sim/trace_sink.hpp"

namespace cs {

/// One recorded event.  `a` is the acting processor (sender for
/// send-side records, receiver for delivery-side ones, owner for timers);
/// `b` is the peer of message events.
struct TraceEvent {
  enum class Kind : char {
    kSend = 'D',             ///< a=sender   b=receiver  clock=send clock
    kDeliver = 'R',          ///< a=receiver b=sender    clock=recv clock
    kLoss = 'L',             ///< a=sender   b=receiver  cause set
    kCrashDrop = 'X',        ///< a=receiver b=sender    (dead receiver)
    kDuplicate = 'U',        ///< a=sender   b=receiver  extra=dup lag
    kSpike = 'K',            ///< a=sender   b=receiver  extra=added delay
    kTimerSet = 'T',         ///< a=owner    clock=now   timer_at set
    kTimerFire = 'F',        ///< a=owner    clock=fire  timer_at set
    kTimerSuppressed = 'Z',  ///< a=owner    timer_at set (dead owner)
  };

  Kind kind{Kind::kSend};
  RealTime real{};     ///< ground-truth real time of the event
  ProcessorId a{0};
  ProcessorId b{0};
  MessageId msg{0};
  ClockTime clock{};   ///< local clock time (D/R/T/F)
  ClockTime timer_at{};///< T/F/Z
  double extra{0.0};   ///< U: duplicate lag; K: added delay
  LossCause cause{LossCause::kSampler};  ///< L only

  bool operator==(const TraceEvent&) const = default;
};

/// How the recorded run drove the epoch pipeline — everything replay needs
/// to re-run it bit-identically.  `options.sync.metrics` is a process-local
/// pointer and is never serialized (always null after load).
struct ReplayPlan {
  EpochOptions options;
  std::vector<ClockTime> boundaries;
  /// true: epochal_synchronize_incremental (delta APSP + Howard warm
  /// start); false: the from-scratch driver.
  bool incremental{true};
};

/// Recorded outcome of one epoch — the bit-exact expectations replay
/// verifies against (corrections, precision, degraded-mode census).
struct EpochRecord {
  ClockTime boundary{};
  ExtReal precision{0.0};
  std::size_t carried_edges{0};
  std::size_t observed_directions{0};
  std::size_t total_directions{0};
  PairingStats pairing;
  std::vector<double> component_precision;  ///< one per finiteness component
  std::vector<double> corrections;          ///< one per processor

  bool operator==(const EpochRecord&) const;
};

/// A fully parsed (or fully recorded) trace.
struct Trace {
  std::uint64_t seed{0};
  std::size_t processors{0};
  std::vector<double> starts;  ///< ground-truth real start time per pid
  std::vector<double> rates;   ///< empty = all clocks at rate exactly 1
  std::string model_text;      ///< embedded chronosync-model v1 document
  ReplayPlan plan;
  std::vector<TraceEvent> events;
  std::map<std::string, std::uint64_t> tallies;   ///< sim summary tallies
  std::vector<EpochRecord> recorded;              ///< per-epoch outcomes
  std::map<std::string, std::uint64_t> counters;  ///< recorded counters

  /// Parse the embedded model document.  Throws cs::Error (with the line
  /// number inside the embedded block) on malformed model text.
  SystemModel model() const;
};

/// Serialize; output is deterministic given the Trace (maps are ordered).
void save_trace(std::ostream& os, const Trace& trace);
void save_trace_file(const std::string& path, const Trace& trace);

/// Parse; throws cs::Error naming the 1-based line number and the
/// offending token on any malformed input.
Trace load_trace(std::istream& is);
Trace load_trace_file(const std::string& path);

/// One-line rendition of an event, exactly as serialized (used by save,
/// and by diff/divergence messages so operators see the raw record).
std::string format_event(const TraceEvent& ev);

/// Build the recorded-outcome row from a computed epoch outcome.
EpochRecord epoch_record(const EpochOutcome& outcome);

}  // namespace cs
