#include "trace/trace.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "io/views_io.hpp"

namespace cs {
namespace {

constexpr const char* kHeader = "chronosync-trace v1";

std::string fmt(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw Error("trace parse error at line " + std::to_string(line_no) + ": " +
              what);
}

double parse_double(const std::string& tok, std::size_t line_no) {
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  if (tok == "-inf") return -std::numeric_limits<double>::infinity();
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size())
    parse_fail(line_no, "bad number '" + tok + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no) {
  if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0])))
    parse_fail(line_no, "bad unsigned integer '" + tok + "'");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size())
    parse_fail(line_no, "bad unsigned integer '" + tok + "'");
  return v;
}

/// Reads the next meaningful line (skipping comments/blanks); false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& line_no) {
  while (std::getline(is, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> toks;
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

const char* loss_cause_name(LossCause c) {
  switch (c) {
    case LossCause::kSampler: return "sampler";
    case LossCause::kFaultDrop: return "drop";
    case LossCause::kLinkDown: return "down";
  }
  return "?";
}

LossCause parse_loss_cause(const std::string& tok, std::size_t line_no) {
  if (tok == "sampler") return LossCause::kSampler;
  if (tok == "drop") return LossCause::kFaultDrop;
  if (tok == "down") return LossCause::kLinkDown;
  parse_fail(line_no, "unknown loss cause '" + tok + "'");
}

const char* apsp_name(ApspAlgorithm a) {
  return a == ApspAlgorithm::kJohnson ? "johnson" : "floyd-warshall";
}

const char* cycle_mean_name(CycleMeanAlgorithm a) {
  return a == CycleMeanAlgorithm::kKarp ? "karp" : "howard";
}

const char* match_name(MatchPolicy m) {
  return m == MatchPolicy::kStrict ? "strict" : "drop-orphans";
}

}  // namespace

std::string format_event(const TraceEvent& ev) {
  std::ostringstream os;
  os << "event " << static_cast<char>(ev.kind) << ' ' << fmt(ev.real.sec);
  switch (ev.kind) {
    case TraceEvent::Kind::kSend:
    case TraceEvent::Kind::kDeliver:
      os << ' ' << ev.a << ' ' << ev.b << ' ' << ev.msg << ' '
         << fmt(ev.clock.sec);
      break;
    case TraceEvent::Kind::kLoss:
      os << ' ' << ev.a << ' ' << ev.b << ' ' << ev.msg << ' '
         << loss_cause_name(ev.cause);
      break;
    case TraceEvent::Kind::kCrashDrop:
      os << ' ' << ev.a << ' ' << ev.b << ' ' << ev.msg;
      break;
    case TraceEvent::Kind::kDuplicate:
    case TraceEvent::Kind::kSpike:
      os << ' ' << ev.a << ' ' << ev.b << ' ' << ev.msg << ' '
         << fmt(ev.extra);
      break;
    case TraceEvent::Kind::kTimerSet:
    case TraceEvent::Kind::kTimerFire:
      os << ' ' << ev.a << ' ' << fmt(ev.clock.sec) << ' '
         << fmt(ev.timer_at.sec);
      break;
    case TraceEvent::Kind::kTimerSuppressed:
      os << ' ' << ev.a << ' ' << fmt(ev.timer_at.sec);
      break;
  }
  return os.str();
}

bool EpochRecord::operator==(const EpochRecord& o) const {
  return boundary == o.boundary && precision == o.precision &&
         carried_edges == o.carried_edges &&
         observed_directions == o.observed_directions &&
         total_directions == o.total_directions &&
         pairing.paired == o.pairing.paired &&
         pairing.orphan_receives == o.pairing.orphan_receives &&
         pairing.duplicate_receives == o.pairing.duplicate_receives &&
         pairing.unreceived_sends == o.pairing.unreceived_sends &&
         component_precision == o.component_precision &&
         corrections == o.corrections;
}

EpochRecord epoch_record(const EpochOutcome& outcome) {
  EpochRecord r;
  r.boundary = outcome.boundary;
  r.precision = outcome.sync.optimal_precision;
  r.carried_edges = outcome.carried_edges;
  r.observed_directions = outcome.coverage.observed_directions;
  r.total_directions = outcome.coverage.total_directions;
  r.pairing = outcome.pairing;
  r.component_precision = outcome.sync.component_precision;
  r.corrections = outcome.sync.corrections;
  return r;
}

SystemModel Trace::model() const {
  std::istringstream is(model_text);
  try {
    return load_model(is);
  } catch (const Error& e) {
    throw Error(std::string("in embedded trace model: ") + e.what());
  }
}

void save_trace(std::ostream& os, const Trace& trace) {
  os << kHeader << '\n';
  os << "processors " << trace.processors << '\n';
  os << "seed " << trace.seed << '\n';
  for (std::size_t p = 0; p < trace.starts.size(); ++p)
    os << "start " << p << ' ' << fmt(trace.starts[p]) << '\n';
  for (std::size_t p = 0; p < trace.rates.size(); ++p)
    os << "rate " << p << ' ' << fmt(trace.rates[p]) << '\n';

  os << "begin model\n" << trace.model_text;
  if (!trace.model_text.empty() && trace.model_text.back() != '\n') os << '\n';
  os << "end model\n";

  const ReplayPlan& plan = trace.plan;
  os << "pipeline " << (plan.incremental ? "incremental" : "rebuild") << '\n';
  os << "root " << plan.options.sync.root << '\n';
  os << "apsp " << apsp_name(plan.options.sync.apsp) << '\n';
  os << "cycle-mean " << cycle_mean_name(plan.options.sync.cycle_mean)
     << '\n';
  os << "match " << match_name(plan.options.sync.match) << '\n';
  os << "window " << fmt(plan.options.window.sec) << '\n';
  const StalenessOptions& st = plan.options.staleness;
  os << "staleness " << (st.carry_forward ? 1 : 0) << ' '
     << fmt(st.widen_per_epoch) << ' ';
  if (st.max_carry_epochs == std::numeric_limits<std::size_t>::max())
    os << "inf";
  else
    os << st.max_carry_epochs;
  os << '\n';
  for (const ClockTime b : plan.boundaries)
    os << "boundary " << fmt(b.sec) << '\n';

  for (const TraceEvent& ev : trace.events) os << format_event(ev) << '\n';

  for (const auto& [name, value] : trace.tallies)
    os << "tally " << name << ' ' << value << '\n';

  for (std::size_t k = 0; k < trace.recorded.size(); ++k) {
    const EpochRecord& r = trace.recorded[k];
    os << "outcome " << k << " boundary " << fmt(r.boundary.sec)
       << " precision " << fmt(r.precision.value()) << " carried "
       << r.carried_edges << " coverage " << r.observed_directions << ' '
       << r.total_directions << " pairing " << r.pairing.paired << ' '
       << r.pairing.orphan_receives << ' ' << r.pairing.duplicate_receives
       << ' ' << r.pairing.unreceived_sends << " components "
       << r.component_precision.size();
    for (const double p : r.component_precision) os << ' ' << fmt(p);
    os << " corrections";
    for (const double c : r.corrections) os << ' ' << fmt(c);
    os << '\n';
  }

  for (const auto& [name, value] : trace.counters)
    os << "counter " << name << ' ' << value << '\n';
  os << "end trace\n";
}

namespace {

TraceEvent parse_event(const std::vector<std::string>& toks,
                       std::size_t line_no) {
  // toks[0] == "event"; toks[1] is the tag, toks[2] the real time.
  if (toks.size() < 3) parse_fail(line_no, "truncated event record");
  if (toks[1].size() != 1)
    parse_fail(line_no, "unknown event tag '" + toks[1] + "'");
  TraceEvent ev;
  ev.real = RealTime{parse_double(toks[2], line_no)};
  const char tag = toks[1][0];
  auto need = [&](std::size_t n) {
    if (toks.size() != n)
      parse_fail(line_no, std::string("wrong field count for event '") + tag +
                              "' (got " + std::to_string(toks.size() - 1) +
                              " fields)");
  };
  switch (tag) {
    case 'D':
    case 'R':
      need(7);
      ev.kind = static_cast<TraceEvent::Kind>(tag);
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.b = static_cast<ProcessorId>(parse_u64(toks[4], line_no));
      ev.msg = parse_u64(toks[5], line_no);
      ev.clock = ClockTime{parse_double(toks[6], line_no)};
      break;
    case 'L':
      need(7);
      ev.kind = TraceEvent::Kind::kLoss;
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.b = static_cast<ProcessorId>(parse_u64(toks[4], line_no));
      ev.msg = parse_u64(toks[5], line_no);
      ev.cause = parse_loss_cause(toks[6], line_no);
      break;
    case 'X':
      need(6);
      ev.kind = TraceEvent::Kind::kCrashDrop;
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.b = static_cast<ProcessorId>(parse_u64(toks[4], line_no));
      ev.msg = parse_u64(toks[5], line_no);
      break;
    case 'U':
    case 'K':
      need(7);
      ev.kind = static_cast<TraceEvent::Kind>(tag);
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.b = static_cast<ProcessorId>(parse_u64(toks[4], line_no));
      ev.msg = parse_u64(toks[5], line_no);
      ev.extra = parse_double(toks[6], line_no);
      break;
    case 'T':
    case 'F':
      need(6);
      ev.kind = static_cast<TraceEvent::Kind>(tag);
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.clock = ClockTime{parse_double(toks[4], line_no)};
      ev.timer_at = ClockTime{parse_double(toks[5], line_no)};
      break;
    case 'Z':
      need(5);
      ev.kind = TraceEvent::Kind::kTimerSuppressed;
      ev.a = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      ev.timer_at = ClockTime{parse_double(toks[4], line_no)};
      break;
    default:
      parse_fail(line_no, "unknown event tag '" + toks[1] + "'");
  }
  return ev;
}

EpochRecord parse_outcome(const std::vector<std::string>& toks,
                          std::size_t line_no, std::size_t processors) {
  // outcome <k> boundary <t> precision <p> carried <n> coverage <o> <t>
  //   pairing <p> <o> <d> <u> components <k> <p...> corrections <c...>
  EpochRecord r;
  std::size_t i = 2;
  auto take = [&]() -> const std::string& {
    if (i >= toks.size())
      parse_fail(line_no, "truncated outcome record");
    return toks[i++];
  };
  auto expect = [&](const char* label) {
    const std::string& got = take();
    if (got != label)
      parse_fail(line_no, std::string("expected '") + label +
                              "' segment in outcome record, got '" + got +
                              "'");
  };
  expect("boundary");
  r.boundary = ClockTime{parse_double(take(), line_no)};
  expect("precision");
  r.precision = ExtReal{parse_double(take(), line_no)};
  expect("carried");
  r.carried_edges = parse_u64(take(), line_no);
  expect("coverage");
  r.observed_directions = parse_u64(take(), line_no);
  r.total_directions = parse_u64(take(), line_no);
  expect("pairing");
  r.pairing.paired = parse_u64(take(), line_no);
  r.pairing.orphan_receives = parse_u64(take(), line_no);
  r.pairing.duplicate_receives = parse_u64(take(), line_no);
  r.pairing.unreceived_sends = parse_u64(take(), line_no);
  expect("components");
  const std::size_t comp = parse_u64(take(), line_no);
  for (std::size_t c = 0; c < comp; ++c)
    r.component_precision.push_back(parse_double(take(), line_no));
  expect("corrections");
  while (i < toks.size())
    r.corrections.push_back(parse_double(toks[i++], line_no));
  if (r.corrections.size() != processors)
    parse_fail(line_no, "corrections count mismatch: got " +
                            std::to_string(r.corrections.size()) +
                            ", expected " + std::to_string(processors));
  return r;
}

}  // namespace

Trace load_trace(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no))
    parse_fail(1, "empty stream (expected '" + std::string(kHeader) + "')");
  if (tokens_of(line) != tokens_of(kHeader))
    parse_fail(line_no, "expected header '" + std::string(kHeader) +
                            "', got '" + line + "'");

  Trace trace;
  bool saw_processors = false;
  bool saw_end = false;
  std::size_t next_outcome = 0;

  while (next_line(is, line, line_no)) {
    auto toks = tokens_of(line);
    const std::string& key = toks[0];
    auto need = [&](std::size_t n) {
      if (toks.size() != n)
        parse_fail(line_no, "wrong field count in '" + key + "' record: '" +
                                line + "'");
    };
    if (key == "processors") {
      need(2);
      trace.processors = parse_u64(toks[1], line_no);
      trace.starts.assign(trace.processors, 0.0);
      saw_processors = true;
    } else if (key == "seed") {
      need(2);
      trace.seed = parse_u64(toks[1], line_no);
    } else if (key == "start" || key == "rate") {
      need(3);
      if (!saw_processors)
        parse_fail(line_no, "'" + key + "' before 'processors'");
      const auto pid = parse_u64(toks[1], line_no);
      if (pid >= trace.processors)
        parse_fail(line_no, "processor id out of range: '" + toks[1] + "'");
      const double v = parse_double(toks[2], line_no);
      if (key == "start") {
        trace.starts[pid] = v;
      } else {
        if (trace.rates.empty()) trace.rates.assign(trace.processors, 1.0);
        trace.rates[pid] = v;
      }
    } else if (key == "begin" && toks.size() == 2 && toks[1] == "model") {
      std::string raw;
      bool closed = false;
      std::ostringstream body;
      while (std::getline(is, raw)) {
        ++line_no;
        if (tokens_of(raw) == std::vector<std::string>{"end", "model"}) {
          closed = true;
          break;
        }
        body << raw << '\n';
      }
      if (!closed) parse_fail(line_no, "unterminated embedded model block");
      trace.model_text = body.str();
    } else if (key == "pipeline") {
      need(2);
      if (toks[1] == "incremental")
        trace.plan.incremental = true;
      else if (toks[1] == "rebuild")
        trace.plan.incremental = false;
      else
        parse_fail(line_no, "unknown pipeline mode '" + toks[1] + "'");
    } else if (key == "root") {
      need(2);
      trace.plan.options.sync.root =
          static_cast<NodeId>(parse_u64(toks[1], line_no));
    } else if (key == "apsp") {
      need(2);
      if (toks[1] == "johnson")
        trace.plan.options.sync.apsp = ApspAlgorithm::kJohnson;
      else if (toks[1] == "floyd-warshall")
        trace.plan.options.sync.apsp = ApspAlgorithm::kFloydWarshall;
      else
        parse_fail(line_no, "unknown apsp algorithm '" + toks[1] + "'");
    } else if (key == "cycle-mean") {
      need(2);
      if (toks[1] == "karp")
        trace.plan.options.sync.cycle_mean = CycleMeanAlgorithm::kKarp;
      else if (toks[1] == "howard")
        trace.plan.options.sync.cycle_mean = CycleMeanAlgorithm::kHoward;
      else
        parse_fail(line_no, "unknown cycle-mean algorithm '" + toks[1] + "'");
    } else if (key == "match") {
      need(2);
      if (toks[1] == "strict")
        trace.plan.options.sync.match = MatchPolicy::kStrict;
      else if (toks[1] == "drop-orphans")
        trace.plan.options.sync.match = MatchPolicy::kDropOrphans;
      else
        parse_fail(line_no, "unknown match policy '" + toks[1] + "'");
    } else if (key == "window") {
      need(2);
      trace.plan.options.window = Duration{parse_double(toks[1], line_no)};
    } else if (key == "staleness") {
      need(4);
      StalenessOptions& st = trace.plan.options.staleness;
      st.carry_forward = parse_u64(toks[1], line_no) != 0;
      st.widen_per_epoch = parse_double(toks[2], line_no);
      st.max_carry_epochs =
          toks[3] == "inf" ? std::numeric_limits<std::size_t>::max()
                           : parse_u64(toks[3], line_no);
    } else if (key == "boundary") {
      need(2);
      trace.plan.boundaries.push_back(
          ClockTime{parse_double(toks[1], line_no)});
    } else if (key == "event") {
      trace.events.push_back(parse_event(toks, line_no));
    } else if (key == "tally") {
      need(3);
      trace.tallies[toks[1]] = parse_u64(toks[2], line_no);
    } else if (key == "outcome") {
      if (toks.size() < 2)
        parse_fail(line_no, "truncated outcome record");
      if (!saw_processors)
        parse_fail(line_no, "'outcome' before 'processors'");
      const std::size_t idx = parse_u64(toks[1], line_no);
      if (idx != next_outcome)
        parse_fail(line_no, "outcome records out of order: got index " +
                                toks[1] + ", expected " +
                                std::to_string(next_outcome));
      ++next_outcome;
      trace.recorded.push_back(
          parse_outcome(toks, line_no, trace.processors));
    } else if (key == "counter") {
      need(3);
      trace.counters[toks[1]] = parse_u64(toks[2], line_no);
    } else if (key == "end" && toks.size() == 2 && toks[1] == "trace") {
      saw_end = true;
      break;
    } else {
      parse_fail(line_no, "unknown record '" + key + "'");
    }
  }
  if (!saw_end) parse_fail(line_no, "missing 'end trace' (truncated file?)");
  if (!saw_processors) parse_fail(line_no, "missing 'processors' record");
  if (trace.model_text.empty())
    parse_fail(line_no, "missing embedded model block");
  return trace;
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open for writing: " + path);
  save_trace(os, trace);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open for reading: " + path);
  return load_trace(is);
}

}  // namespace cs
