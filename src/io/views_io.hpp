// Plain-text serialization of views and system models.
//
// The deployment story of this library is: instrument your nodes to log
// (send clock, receive clock, message id) triples, ship the logs to one
// place, run the pipeline.  These readers/writers define the interchange
// format for that workflow — versioned, line-based, diff-able, and
// round-trip exact (doubles are printed with 17 significant digits).
//
//   chronosync-views v1
//   processors <n>
//   view <pid> <event-count>
//   S 0                      # start (clock always 0)
//   D <when> <msg> <peer>    # send ("departure")
//   R <when> <msg> <peer>    # receive
//   T <when> <timer-at>      # timer set
//   F <when> <timer-at>      # timer fired
//
//   chronosync-model v1
//   processors <n>
//   link <a> <b> bounds <lb> <ub|inf>
//   link <a> <b> lower <lb>
//   link <a> <b> none
//   link <a> <b> bias <bound>
//   link <a> <b> wbias <bound> <window>
//
// Repeating `link` lines for the same pair conjoins the constraints
// (Theorem 5.6).  Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "delaymodel/assignment.hpp"
#include "model/view.hpp"

namespace cs {

void save_views(std::ostream& os, std::span<const View> views);
std::vector<View> load_views(std::istream& is);  ///< throws cs::Error

void save_views_file(const std::string& path, std::span<const View> views);
std::vector<View> load_views_file(const std::string& path);

void save_model(std::ostream& os, const SystemModel& model);
SystemModel load_model(std::istream& is);  ///< throws cs::Error

void save_model_file(const std::string& path, const SystemModel& model);
SystemModel load_model_file(const std::string& path);

}  // namespace cs
