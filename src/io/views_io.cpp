#include "io/views_io.hpp"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "delaymodel/windowed_bias.hpp"

namespace cs {
namespace {

constexpr const char* kViewsHeader = "chronosync-views v1";
constexpr const char* kModelHeader = "chronosync-model v1";

std::string fmt(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double(const std::string& tok, std::size_t line_no) {
  if (tok == "inf") return std::numeric_limits<double>::infinity();
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size())
    throw Error("parse error at line " + std::to_string(line_no) +
                ": bad number '" + tok + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &pos, 10);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size() || tok.empty() || tok[0] == '-' || tok[0] == '+')
    throw Error("parse error at line " + std::to_string(line_no) +
                ": bad unsigned integer '" + tok + "'");
  return v;
}

/// Reads the next meaningful line (skipping comments/blanks); false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& line_no) {
  while (std::getline(is, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> toks;
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw Error("parse error at line " + std::to_string(line_no) + ": " +
              what);
}

}  // namespace

void save_views(std::ostream& os, std::span<const View> views) {
  os << kViewsHeader << '\n';
  os << "processors " << views.size() << '\n';
  for (const View& v : views) {
    os << "view " << v.pid << ' ' << v.events.size() << '\n';
    for (const ViewEvent& e : v.events) {
      switch (e.kind) {
        case EventKind::kStart:
          os << "S " << fmt(e.when.sec) << '\n';
          break;
        case EventKind::kSend:
          os << "D " << fmt(e.when.sec) << ' ' << e.msg << ' ' << e.peer
             << '\n';
          break;
        case EventKind::kReceive:
          os << "R " << fmt(e.when.sec) << ' ' << e.msg << ' ' << e.peer
             << '\n';
          break;
        case EventKind::kTimerSet:
          os << "T " << fmt(e.when.sec) << ' ' << fmt(e.timer_at.sec)
             << '\n';
          break;
        case EventKind::kTimerFire:
          os << "F " << fmt(e.when.sec) << ' ' << fmt(e.timer_at.sec)
             << '\n';
          break;
      }
    }
  }
}

std::vector<View> load_views(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no))
    parse_fail(line_no + 1, "missing header 'chronosync-views v1'");
  if (tokens_of(line) != tokens_of(kViewsHeader))
    parse_fail(line_no, "expected header 'chronosync-views v1', got '" +
                            line + "'");

  if (!next_line(is, line, line_no))
    parse_fail(line_no + 1, "missing 'processors <n>'");
  auto toks = tokens_of(line);
  if (toks.size() != 2 || toks[0] != "processors")
    parse_fail(line_no, "expected 'processors <n>', got '" + line + "'");
  const auto n = static_cast<std::size_t>(parse_u64(toks[1], line_no));

  std::vector<View> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(is, line, line_no))
      parse_fail(line_no + 1, "truncated stream: expected view block for "
                              "processor " +
                                  std::to_string(i) + " of " +
                                  std::to_string(n));
    toks = tokens_of(line);
    if (toks.size() != 3 || toks[0] != "view")
      parse_fail(line_no, "expected 'view <pid> <events>', got '" + line +
                              "'");
    const auto pid =
        static_cast<ProcessorId>(parse_u64(toks[1], line_no));
    if (pid < i)
      parse_fail(line_no, "duplicate view block for processor " +
                              std::to_string(pid));
    if (pid != i) parse_fail(line_no, "views must appear in pid order");
    const auto count =
        static_cast<std::size_t>(parse_u64(toks[2], line_no));
    View& v = views[i];
    v.pid = pid;
    v.events.reserve(count);
    for (std::size_t e = 0; e < count; ++e) {
      if (!next_line(is, line, line_no))
        parse_fail(line_no + 1,
                   "truncated stream: view " + std::to_string(pid) +
                       " declares " + std::to_string(count) +
                       " events but only " + std::to_string(e) +
                       " are present");
      toks = tokens_of(line);
      if (toks[0] == "view")
        parse_fail(line_no, "event count mismatch: view " +
                                std::to_string(pid) + " declares " +
                                std::to_string(count) +
                                " events but only " + std::to_string(e) +
                                " precede the next view block");
      ViewEvent ev;
      if (toks[0] == "S" && toks.size() == 2) {
        ev.kind = EventKind::kStart;
        ev.when = ClockTime{parse_double(toks[1], line_no)};
      } else if ((toks[0] == "D" || toks[0] == "R") && toks.size() == 4) {
        ev.kind = toks[0] == "D" ? EventKind::kSend : EventKind::kReceive;
        ev.when = ClockTime{parse_double(toks[1], line_no)};
        ev.msg = static_cast<MessageId>(parse_u64(toks[2], line_no));
        ev.peer = static_cast<ProcessorId>(parse_u64(toks[3], line_no));
      } else if ((toks[0] == "T" || toks[0] == "F") && toks.size() == 3) {
        ev.kind =
            toks[0] == "T" ? EventKind::kTimerSet : EventKind::kTimerFire;
        ev.when = ClockTime{parse_double(toks[1], line_no)};
        ev.timer_at = ClockTime{parse_double(toks[2], line_no)};
      } else if (toks[0] == "S" || toks[0] == "D" || toks[0] == "R" ||
                 toks[0] == "T" || toks[0] == "F") {
        parse_fail(line_no, "wrong field count for event tag '" + toks[0] +
                                "' in '" + line + "'");
      } else {
        parse_fail(line_no, "unknown event tag '" + toks[0] + "'");
      }
      v.events.push_back(ev);
    }
  }
  return views;
}

namespace {

/// Emits one or more `link` lines for a constraint (composites recurse).
void emit_constraint(std::ostream& os, const LinkConstraint& c) {
  if (const auto* comp = dynamic_cast<const CompositeConstraint*>(&c)) {
    for (std::size_t i = 0; i < comp->part_count(); ++i)
      emit_constraint(os, comp->part(i));
    return;
  }
  os << "link " << c.a() << ' ' << c.b() << ' ';
  if (const auto* bounds = dynamic_cast<const BoundsConstraint*>(&c)) {
    const Interval& ab = bounds->bounds(bounds->a());
    const Interval& ba = bounds->bounds(bounds->b());
    if (!(ab == ba))
      throw Error("model format v1 cannot express asymmetric bounds");
    if (ab.hi().is_pos_inf() && ab.lo() == ExtReal{0.0}) {
      os << "none\n";
    } else if (ab.hi().is_pos_inf()) {
      os << "lower " << fmt(ab.lo().finite()) << '\n';
    } else {
      os << "bounds " << fmt(ab.lo().finite()) << ' '
         << fmt(ab.hi().finite()) << '\n';
    }
    return;
  }
  if (const auto* wb = dynamic_cast<const WindowedBiasConstraint*>(&c)) {
    os << "wbias " << fmt(wb->bias()) << ' ' << fmt(wb->window()) << '\n';
    return;
  }
  if (const auto* bias = dynamic_cast<const BiasConstraint*>(&c)) {
    os << "bias " << fmt(bias->bias()) << '\n';
    return;
  }
  throw Error("model format v1 cannot express constraint: " + c.describe());
}

}  // namespace

void save_model(std::ostream& os, const SystemModel& model) {
  os << kModelHeader << '\n';
  os << "processors " << model.processor_count() << '\n';
  for (auto [a, b] : model.topology().links)
    emit_constraint(os, model.constraint(a, b));
}

SystemModel load_model(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(is, line, line_no))
    parse_fail(line_no + 1, "missing header 'chronosync-model v1'");
  if (tokens_of(line) != tokens_of(kModelHeader))
    parse_fail(line_no, "expected header 'chronosync-model v1', got '" +
                            line + "'");

  if (!next_line(is, line, line_no))
    parse_fail(line_no + 1, "missing 'processors <n>'");
  auto toks = tokens_of(line);
  if (toks.size() != 2 || toks[0] != "processors")
    parse_fail(line_no, "expected 'processors <n>', got '" + line + "'");
  const auto n = static_cast<std::size_t>(parse_u64(toks[1], line_no));

  // Gather constraint specs per link; repeated lines conjoin (Thm 5.6).
  struct Spec {
    ProcessorId a, b;
    std::vector<std::unique_ptr<LinkConstraint>> parts;
  };
  std::vector<Spec> specs;
  auto find_spec = [&](ProcessorId a, ProcessorId b) -> Spec& {
    for (Spec& s : specs)
      if (s.a == a && s.b == b) return s;
    specs.push_back(Spec{a, b, {}});
    return specs.back();
  };

  while (next_line(is, line, line_no)) {
    toks = tokens_of(line);
    if (toks.size() < 4 || toks[0] != "link")
      parse_fail(line_no,
                 "expected 'link <a> <b> <kind> ...', got '" + line + "'");
    auto a = static_cast<ProcessorId>(parse_u64(toks[1], line_no));
    auto b = static_cast<ProcessorId>(parse_u64(toks[2], line_no));
    if (a > b) std::swap(a, b);
    if (b >= n)
      parse_fail(line_no, "link endpoint " + std::to_string(b) +
                              " out of range (processors " +
                              std::to_string(n) + ")");
    const std::string& kind = toks[3];
    std::unique_ptr<LinkConstraint> c;
    if (kind == "none" && toks.size() == 4) {
      c = make_no_bounds(a, b);
    } else if (kind == "lower" && toks.size() == 5) {
      c = make_lower_bound_only(a, b, parse_double(toks[4], line_no));
    } else if (kind == "bounds" && toks.size() == 6) {
      c = make_bounds(a, b, parse_double(toks[4], line_no),
                      parse_double(toks[5], line_no));
    } else if (kind == "bias" && toks.size() == 5) {
      c = make_bias(a, b, parse_double(toks[4], line_no));
    } else if (kind == "wbias" && toks.size() == 6) {
      c = make_windowed_bias(a, b, parse_double(toks[4], line_no),
                             parse_double(toks[5], line_no));
    } else if (kind == "none" || kind == "lower" || kind == "bounds" ||
               kind == "bias" || kind == "wbias") {
      parse_fail(line_no, "wrong field count for link kind '" + kind +
                              "' in '" + line + "'");
    } else {
      parse_fail(line_no, "unknown link kind '" + kind + "'");
    }
    find_spec(a, b).parts.push_back(std::move(c));
  }

  Topology topo;
  topo.node_count = n;
  for (const Spec& s : specs) topo.links.emplace_back(s.a, s.b);
  SystemModel model(std::move(topo));
  for (Spec& s : specs) {
    if (s.parts.size() == 1) {
      model.set_constraint(std::move(s.parts.front()));
    } else {
      model.set_constraint(make_composite(s.a, s.b, std::move(s.parts)));
    }
  }
  return model;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open for writing: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open for reading: " + path);
  return is;
}

}  // namespace

void save_views_file(const std::string& path, std::span<const View> views) {
  auto os = open_out(path);
  save_views(os, views);
}

std::vector<View> load_views_file(const std::string& path) {
  auto is = open_in(path);
  return load_views(is);
}

void save_model_file(const std::string& path, const SystemModel& model) {
  auto os = open_out(path);
  save_model(os, model);
}

SystemModel load_model_file(const std::string& path) {
  auto is = open_in(path);
  return load_model(is);
}

}  // namespace cs
