// The distributed coordinator protocol sketched in the paper's §7.
//
// Phases (all driven by local clocks, no real-time access):
//   1. Probe: every processor ping-pongs with its neighbors; every probe
//      carries its send clock time, so the *receiver* can accumulate the
//      estimated delays d̃ = T_recv - T_send of its incoming directions
//      (Lemma 6.1 done online).
//   2. Report: at clock time `report_at`, each processor snapshots its
//      incoming-direction statistics and floods them; reports are forwarded
//      once per origin.
//   3. Compute: when the leader holds all n reports it runs the pipeline
//      (m̃ls -> GLOBAL ESTIMATES -> SHIFTS) and floods the corrections.
//
// As §7 observes, the precision claimed by the leader is optimal only with
// respect to the probe-phase traffic; the report/correction messages extend
// the views, so an offline run of the pipeline over the *full* views can
// only be at least as tight.  The integration tests check both facts.
#pragma once

#include <optional>
#include <vector>

#include "common/extreal.hpp"
#include "delaymodel/assignment.hpp"
#include "sim/simulator.hpp"

namespace cs {

struct CoordinatorParams {
  Duration warmup{0.5};
  Duration spacing{0.05};
  std::size_t rounds{4};
  /// Clock time at which processors snapshot and flood their statistics.
  /// Must exceed warmup + rounds * spacing (checked).
  Duration report_at{2.0};
  ProcessorId leader{0};
  /// Watchdog: when positive, the leader computes at clock time
  /// report_at + compute_grace from whatever reports arrived, instead of
  /// waiting forever for reports lost to faults.  The outcome is flagged
  /// kDegraded (and may be per-component when the surviving traffic leaves
  /// the m̃ls graph partitioned).  Zero = wait indefinitely (historic
  /// behavior: under message loss the protocol silently never completes).
  Duration compute_grace{0.0};
};

/// Where the protocol run ended up, from the leader's point of view.
enum class CoordinatorStatus : std::uint8_t {
  kPending,   ///< leader never computed (missing reports, no watchdog)
  kComplete,  ///< computed from all n reports
  kDegraded,  ///< watchdog computed from a partial report set
};

/// Sink filled in as the protocol completes; owned by the caller and shared
/// by all automata of one run (the simulator is single-threaded).
struct CoordinatorResults {
  std::vector<std::optional<double>> corrections;
  std::optional<double> claimed_precision;  ///< +inf encodes unbounded
  CoordinatorStatus status{CoordinatorStatus::kPending};
  /// Reports the leader had absorbed when it computed (n when kComplete).
  std::size_t reports_absorbed{0};

  bool complete() const;
};

inline constexpr std::uint32_t kTagCoordPing = 10;
inline constexpr std::uint32_t kTagCoordPong = 11;
inline constexpr std::uint32_t kTagCoordReport = 12;
inline constexpr std::uint32_t kTagCoordCorrections = 13;

/// `model` and `results` must outlive the simulation.
AutomatonFactory make_coordinator(const SystemModel* model,
                                  CoordinatorParams params,
                                  CoordinatorResults* results);

}  // namespace cs
