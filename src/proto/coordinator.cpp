#include "proto/coordinator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "core/local_estimates.hpp"
#include "core/synchronizer.hpp"

namespace cs {

bool CoordinatorResults::complete() const {
  return claimed_precision.has_value() &&
         std::all_of(corrections.begin(), corrections.end(),
                     [](const auto& c) { return c.has_value(); });
}

namespace {

/// One incoming direction's running aggregate at a processor.
struct InStats {
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
  std::size_t count = 0;

  void add(double d) {
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
    ++count;
  }
};

class CoordinatorAutomaton final : public Automaton {
 public:
  CoordinatorAutomaton(ProcessorId self, const SystemModel* model,
                       CoordinatorParams params, CoordinatorResults* results)
      : self_(self), model_(model), params_(params), results_(results) {}

  void on_start(Context& ctx) override {
    report_clock_ = ClockTime{} + params_.report_at;
    if (params_.rounds > 0) ctx.set_timer(ctx.now() + params_.warmup);
    ctx.set_timer(report_clock_);
    if (self_ == params_.leader && params_.compute_grace > Duration{0.0}) {
      grace_clock_ = report_clock_ + params_.compute_grace;
      ctx.set_timer(*grace_clock_);
    }
  }

  void on_timer(Context& ctx, ClockTime at) override {
    if (grace_clock_.has_value() && at >= *grace_clock_) {
      // Watchdog: reports are overdue — compute from what arrived rather
      // than hang forever (degraded mode; see docs/FAULTS.md).
      if (!computed_ && reports_absorbed_ > 0) {
        computed_ = true;
        finish_compute(ctx, /*degraded=*/true);
      }
      return;
    }
    if (at >= report_clock_) {
      send_report(ctx);
      return;
    }
    Payload ping;
    ping.tag = kTagCoordPing;
    ping.data = {ctx.now().sec};
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, ping);
    if (++sent_rounds_ < params_.rounds)
      ctx.set_timer(ctx.now() + params_.spacing);
  }

  void on_message(Context& ctx, const Message& msg) override {
    switch (msg.payload.tag) {
      case kTagCoordPing: {
        record_probe(ctx, msg);
        Payload pong;
        pong.tag = kTagCoordPong;
        pong.data = {ctx.now().sec};
        ctx.send(msg.from, pong);
        break;
      }
      case kTagCoordPong:
        record_probe(ctx, msg);
        break;
      case kTagCoordReport:
        handle_report(ctx, msg);
        break;
      case kTagCoordCorrections:
        handle_corrections(ctx, msg);
        break;
      default:
        break;
    }
  }

 private:
  void record_probe(Context& ctx, const Message& msg) {
    if (reported_) return;  // probe-phase snapshot already taken
    if (msg.payload.data.empty()) return;
    const double d_est = ctx.now().sec - msg.payload.data[0];
    incoming_[msg.from].add(d_est);
  }

  // Report payload layout: [origin, k, then k tuples (from, dmin, dmax,
  // count)] — the stats of directions *into* origin.
  void send_report(Context& ctx) {
    if (reported_) return;
    reported_ = true;

    Payload report;
    report.tag = kTagCoordReport;
    report.data = {static_cast<double>(self_),
                   static_cast<double>(incoming_.size())};
    for (const auto& [from, st] : incoming_) {
      report.data.push_back(static_cast<double>(from));
      report.data.push_back(st.dmin);
      report.data.push_back(st.dmax);
      report.data.push_back(static_cast<double>(st.count));
    }

    if (self_ == params_.leader) {
      absorb_report(report.data);
      maybe_compute(ctx);
    } else {
      seen_reports_.insert(self_);
      for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, report);
    }
  }

  void handle_report(Context& ctx, const Message& msg) {
    const auto& d = msg.payload.data;
    if (d.size() < 2) return;
    const auto origin = static_cast<ProcessorId>(d[0]);
    if (!seen_reports_.insert(origin).second) return;  // duplicate

    if (self_ == params_.leader) {
      absorb_report(d);
      maybe_compute(ctx);
    } else {
      for (ProcessorId nb : ctx.neighbors())
        if (nb != msg.from) ctx.send(nb, msg.payload);
    }
  }

  void absorb_report(const std::vector<double>& d) {
    const auto origin = static_cast<ProcessorId>(d[0]);
    const auto k = static_cast<std::size_t>(d[1]);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t base = 2 + 4 * i;
      if (base + 4 > d.size()) break;
      const auto from = static_cast<ProcessorId>(d[base]);
      const auto count = static_cast<std::size_t>(d[base + 3]);
      if (count == 0) continue;
      // Re-expand min/max into the stats aggregate: adding the two
      // extremes reproduces the same DirectedStats.
      gathered_.add(from, origin, d[base + 1]);
      gathered_.add(from, origin, d[base + 2]);
    }
    ++reports_absorbed_;
    results_->reports_absorbed = reports_absorbed_;
  }

  void maybe_compute(Context& ctx) {
    if (computed_ || reports_absorbed_ < model_->processor_count()) return;
    computed_ = true;
    finish_compute(ctx, /*degraded=*/false);
  }

  void finish_compute(Context& ctx, bool degraded) {
    // synchronize_mls is the full pipeline tail (GLOBAL ESTIMATES +
    // SHIFTS); unlike a direct compute_shifts it also handles partitioned
    // graphs — exactly what a degraded, partial report set can produce —
    // by degrading to per-finiteness-component corrections.
    SyncOptions options;
    options.root = params_.leader;
    const SyncOutcome out =
        synchronize_mls(mls_graph_from_stats(*model_, gathered_), options);

    results_->claimed_precision = out.optimal_precision.value();
    results_->corrections[self_] = out.corrections[self_];
    results_->status = degraded ? CoordinatorStatus::kDegraded
                                : CoordinatorStatus::kComplete;

    Payload payload;
    payload.tag = kTagCoordCorrections;
    payload.data.assign(out.corrections.begin(), out.corrections.end());
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, payload);
  }

  void handle_corrections(Context& ctx, const Message& msg) {
    if (have_corrections_) return;
    have_corrections_ = true;
    if (self_ < msg.payload.data.size())
      results_->corrections[self_] = msg.payload.data[self_];
    for (ProcessorId nb : ctx.neighbors())
      if (nb != msg.from) ctx.send(nb, msg.payload);
  }

  ProcessorId self_;
  const SystemModel* model_;
  CoordinatorParams params_;
  CoordinatorResults* results_;

  ClockTime report_clock_{};
  std::optional<ClockTime> grace_clock_;  // leader watchdog deadline
  std::size_t sent_rounds_{0};
  bool reported_{false};
  bool computed_{false};
  bool have_corrections_{false};

  std::map<ProcessorId, InStats> incoming_;
  std::set<ProcessorId> seen_reports_;
  LinkStats gathered_;
  std::size_t reports_absorbed_{0};
};

}  // namespace

AutomatonFactory make_coordinator(const SystemModel* model,
                                  CoordinatorParams params,
                                  CoordinatorResults* results) {
  if (model == nullptr || results == nullptr)
    throw Error("make_coordinator: model and results must be non-null");
  if (params.report_at.sec <=
      params.warmup.sec +
          static_cast<double>(params.rounds) * params.spacing.sec)
    throw Error("report_at must come after the probe phase completes");
  if (params.leader >= model->processor_count())
    throw Error("leader id out of range");
  if (params.compute_grace < Duration{0.0})
    throw Error("compute_grace must be non-negative");
  results->corrections.assign(model->processor_count(), std::nullopt);
  results->claimed_precision.reset();
  results->status = CoordinatorStatus::kPending;
  results->reports_absorbed = 0;
  return [model, params, results](ProcessorId self) {
    return std::make_unique<CoordinatorAutomaton>(self, model, params,
                                                  results);
  };
}

}  // namespace cs
