#include "proto/beacon.hpp"

namespace cs {
namespace {

class BeaconAutomaton final : public Automaton {
 public:
  BeaconAutomaton(ProcessorId self, BeaconParams params)
      : params_(params),
        silent_(!params.everyone_beacons && (self % 2 == 1)) {}

  void on_start(Context& ctx) override {
    if (!silent_ && params_.count > 0)
      ctx.set_timer(ctx.now() + params_.warmup);
  }

  void on_timer(Context& ctx, ClockTime) override {
    Payload beacon;
    beacon.tag = kTagBeacon;
    beacon.data = {ctx.now().sec};
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, beacon);
    if (++sent_ < params_.count) ctx.set_timer(ctx.now() + params_.period);
  }

  void on_message(Context&, const Message&) override {}

 private:
  BeaconParams params_;
  bool silent_;
  std::size_t sent_{0};
};

}  // namespace

AutomatonFactory make_beacon(BeaconParams params) {
  return [params](ProcessorId self) {
    return std::make_unique<BeaconAutomaton>(self, params);
  };
}

}  // namespace cs
