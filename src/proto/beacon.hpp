// One-way periodic beacons.
//
// No replies at all: each processor periodically announces itself to its
// neighbors.  Under asymmetric-information models (e.g. lower bounds only)
// one-way traffic already produces finite m̃ls in the receiving direction,
// so beaconing is the minimal-cost interactive part; it also exercises the
// pipeline's handling of links with traffic in a single direction.
#pragma once

#include "sim/simulator.hpp"

namespace cs {

struct BeaconParams {
  Duration warmup{0.5};
  Duration period{0.1};
  std::size_t count{5};
  /// When false, processors with odd ids stay silent — producing
  /// one-directional traffic on every link of a bipartite-ish topology.
  bool everyone_beacons{true};
};

inline constexpr std::uint32_t kTagBeacon = 3;

AutomatonFactory make_beacon(BeaconParams params);

}  // namespace cs
