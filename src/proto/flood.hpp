// Bounded flooding.
//
// Each processor originates one token that is flooded hop-by-hop with a TTL;
// intermediate processors forward a token the first time they see it.  This
// produces multi-hop, cross-network traffic whose per-link message counts
// are irregular — a stress shape for the estimators, and the transport the
// coordinator protocol reuses for dissemination.
#pragma once

#include "sim/simulator.hpp"

namespace cs {

struct FloodParams {
  Duration warmup{0.5};
  std::size_t ttl{8};
};

inline constexpr std::uint32_t kTagFlood = 4;

AutomatonFactory make_flood(FloodParams params);

}  // namespace cs
