#include "proto/ping_pong.hpp"

namespace cs {
namespace {

class PingPongAutomaton final : public Automaton {
 public:
  explicit PingPongAutomaton(PingPongParams params) : params_(params) {}

  void on_start(Context& ctx) override {
    if (params_.rounds > 0) ctx.set_timer(ctx.now() + params_.warmup);
  }

  void on_timer(Context& ctx, ClockTime) override {
    Payload ping;
    ping.tag = kTagPing;
    ping.data = {ctx.now().sec};
    for (ProcessorId nb : ctx.neighbors()) ctx.send(nb, ping);
    if (++sent_rounds_ < params_.rounds)
      ctx.set_timer(ctx.now() + params_.spacing);
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.payload.tag == kTagPing) {
      Payload pong;
      pong.tag = kTagPong;
      pong.data = {ctx.now().sec};
      ctx.send(msg.from, pong);
    }
    // Pongs need no reply; their receive events already enrich the view.
  }

 private:
  PingPongParams params_;
  std::size_t sent_rounds_{0};
};

}  // namespace

AutomatonFactory make_ping_pong(PingPongParams params) {
  return [params](ProcessorId) {
    return std::make_unique<PingPongAutomaton>(params);
  };
}

}  // namespace cs
