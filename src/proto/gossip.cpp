#include "proto/gossip.hpp"

namespace cs {
namespace {

class GossipAutomaton final : public Automaton {
 public:
  GossipAutomaton(ProcessorId self, GossipParams params)
      : params_(params), rng_(params.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))) {}

  void on_start(Context& ctx) override {
    if (params_.rounds > 0) ctx.set_timer(ctx.now() + params_.warmup);
  }

  void on_timer(Context& ctx, ClockTime) override {
    const auto neighbors = ctx.neighbors();
    if (!neighbors.empty()) {
      const auto pick = neighbors[rng_.uniform_int(neighbors.size())];
      Payload probe;
      probe.tag = kTagGossipProbe;
      probe.data = {ctx.now().sec};
      ctx.send(pick, probe);
    }
    if (++sent_ < params_.rounds) ctx.set_timer(ctx.now() + params_.period);
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.payload.tag == kTagGossipProbe) {
      Payload reply;
      reply.tag = kTagGossipReply;
      reply.data = {ctx.now().sec};
      ctx.send(msg.from, reply);
    }
  }

 private:
  GossipParams params_;
  Rng rng_;
  std::size_t sent_{0};
};

}  // namespace

AutomatonFactory make_gossip(GossipParams params) {
  return [params](ProcessorId self) {
    return std::make_unique<GossipAutomaton>(self, params);
  };
}

}  // namespace cs
