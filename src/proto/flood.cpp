#include "proto/flood.hpp"

#include <set>

namespace cs {
namespace {

class FloodAutomaton final : public Automaton {
 public:
  explicit FloodAutomaton(FloodParams params) : params_(params) {}

  void on_start(Context& ctx) override {
    ctx.set_timer(ctx.now() + params_.warmup);
  }

  void on_timer(Context& ctx, ClockTime) override {
    // Token payload: [origin, ttl].
    forward(ctx, ctx.self(), params_.ttl, /*except=*/ctx.self());
    seen_.insert(ctx.self());
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.payload.tag != kTagFlood || msg.payload.data.size() != 2) return;
    const auto origin = static_cast<ProcessorId>(msg.payload.data[0]);
    const auto ttl = static_cast<std::size_t>(msg.payload.data[1]);
    if (!seen_.insert(origin).second) return;  // already forwarded
    if (ttl > 0) forward(ctx, origin, ttl - 1, msg.from);
  }

 private:
  void forward(Context& ctx, ProcessorId origin, std::size_t ttl,
               ProcessorId except) {
    Payload p;
    p.tag = kTagFlood;
    p.data = {static_cast<double>(origin), static_cast<double>(ttl)};
    for (ProcessorId nb : ctx.neighbors())
      if (nb != except) ctx.send(nb, p);
  }

  FloodParams params_;
  std::set<ProcessorId> seen_;
};

}  // namespace

AutomatonFactory make_flood(FloodParams params) {
  return [params](ProcessorId) {
    return std::make_unique<FloodAutomaton>(params);
  };
}

}  // namespace cs
