// Randomized gossip probing.
//
// Each processor periodically picks one *random* neighbor and exchanges a
// timestamped probe with it (the neighbor answers).  Traffic is therefore
// irregular per link — some links see many samples, some few, some only
// one direction for a while — which is the stress shape for the estimators
// and the integration tests, and a realistic model of piggybacked
// timestamps on application traffic.
//
// Randomness comes from a per-processor seed (deterministic given the
// factory seed), not from the delay RNG, so gossip choices never perturb
// delay draws.
#pragma once

#include "sim/simulator.hpp"

namespace cs {

struct GossipParams {
  Duration warmup{0.5};
  Duration period{0.05};
  std::size_t rounds{16};
  std::uint64_t seed{1};
};

inline constexpr std::uint32_t kTagGossipProbe = 20;
inline constexpr std::uint32_t kTagGossipReply = 21;

AutomatonFactory make_gossip(GossipParams params);

}  // namespace cs
