// Ping-pong probing: the canonical "interactive part".
//
// Each processor waits out a warmup (so that no probe is sent before every
// peer has started), then sends `rounds` pings to each neighbor, spaced by
// `spacing` on its clock; a neighbor answers each ping with an immediate
// pong.  Both directions of every link thus carry 2*rounds messages, which
// is what the §6 estimators feed on: more probes tighten d̃min/d̃max and so
// tighten the achievable precision — experiment E2 measures exactly that.
//
// The paper separates the interactive part from the correction computation
// (§3); this protocol makes no decisions beyond generating traffic, and the
// pipeline consumes whatever views result.
#pragma once

#include "sim/simulator.hpp"

namespace cs {

struct PingPongParams {
  /// Clock time of the first probe; choose >= the maximum start skew so
  /// probes never race a peer's start event.
  Duration warmup{0.5};
  /// Gap between probe rounds on the sender's clock.
  Duration spacing{0.05};
  /// Number of probe rounds per neighbor.
  std::size_t rounds{4};
};

/// Payload tags used by this protocol.
inline constexpr std::uint32_t kTagPing = 1;
inline constexpr std::uint32_t kTagPong = 2;

AutomatonFactory make_ping_pong(PingPongParams params);

}  // namespace cs
