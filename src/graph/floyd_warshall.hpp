// Floyd–Warshall all-pairs shortest paths.
//
// The reference implementation for GLOBAL ESTIMATES (Theorem 5.5): m̃s(p,q)
// is exactly the p→q distance under edge weights m̃ls.  The pipeline uses
// Johnson's algorithm for sparse networks; Floyd–Warshall serves dense
// graphs and is the oracle both are tested against.
#pragma once

#include <vector>

#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// Row-major n*n distance matrix; +inf = unreachable; diagonal 0.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(std::size_t n)
      : n_(n), d_(n * n, kInfDist) {
    for (std::size_t i = 0; i < n; ++i) at(i, i) = 0.0;
  }

  std::size_t size() const { return n_; }
  double& at(std::size_t i, std::size_t j) { return d_[i * n_ + j]; }
  double at(std::size_t i, std::size_t j) const { return d_[i * n_ + j]; }

  /// Re-initializes to the n-node identity matrix (+inf off-diagonal),
  /// reusing the existing buffer when the size matches — the per-epoch
  /// rebuild path re-fills in place instead of reallocating.
  void reset(std::size_t n) {
    n_ = n;
    d_.assign(n * n, kInfDist);
    for (std::size_t i = 0; i < n; ++i) at(i, i) = 0.0;
  }

 private:
  std::size_t n_{0};
  std::vector<double> d_;
};

/// Returns std::nullopt iff the graph has a negative cycle (detected by a
/// negative diagonal entry).
std::optional<DistanceMatrix> floyd_warshall(const Digraph& g);

}  // namespace cs
