// Maximum (and minimum) mean cycle of a weighted digraph.
//
// This is the computational heart of SHIFTS: the optimal achievable
// precision on an instance is exactly
//
//   Ã^max = max over cycles θ of ( Σ m̃s-weights on θ / |θ| )     (§4.4)
//
// The paper prescribes Karp's O(nm) characterization [Karp, Disc. Math. 23
// (1978)].  We provide Karp as the primary implementation, a binary-search
// (Lawler-style) alternative used for the E8 ablation, and an exhaustive
// enumerator used as a test oracle on small graphs.
#pragma once

#include <optional>

#include "graph/digraph.hpp"

namespace cs {

/// Maximum cycle mean over all directed cycles; std::nullopt if acyclic.
/// Decomposes by SCC internally, so the graph need not be strongly
/// connected.  Exact up to float rounding.
std::optional<double> max_cycle_mean_karp(const Digraph& g);

/// Minimum cycle mean, by negation.
std::optional<double> min_cycle_mean_karp(const Digraph& g);

/// Binary search on mu using positive-cycle detection: mu* is the largest mu
/// such that weights (w - mu) still admit a non-negative cycle.  Converges
/// to `tolerance`; ablation comparator for Karp (bench E8).
std::optional<double> max_cycle_mean_bsearch(const Digraph& g,
                                             double tolerance = 1e-9);

/// Howard's policy iteration (max-plus spectral algorithm) — the fastest
/// known cycle-mean algorithm in practice [Dasdan's experimental studies],
/// exact like Karp.  Second ablation arm of bench E8.
std::optional<double> max_cycle_mean_howard(const Digraph& g);

/// Exhaustive enumeration of simple cycles (test oracle; exponential, keep
/// node_count small).
std::optional<double> max_cycle_mean_brute(const Digraph& g);

}  // namespace cs
