// Maximum (and minimum) mean cycle of a weighted digraph.
//
// This is the computational heart of SHIFTS: the optimal achievable
// precision on an instance is exactly
//
//   Ã^max = max over cycles θ of ( Σ m̃s-weights on θ / |θ| )     (§4.4)
//
// The paper prescribes Karp's O(nm) characterization [Karp, Disc. Math. 23
// (1978)].  We provide Karp as the primary implementation, a binary-search
// (Lawler-style) alternative used for the E8 ablation, and an exhaustive
// enumerator used as a test oracle on small graphs.
#pragma once

#include <optional>
#include <vector>

#include "common/metrics.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// Maximum cycle mean over all directed cycles; std::nullopt if acyclic.
/// Decomposes by SCC internally, so the graph need not be strongly
/// connected.  Exact up to float rounding.
std::optional<double> max_cycle_mean_karp(const Digraph& g);

/// Minimum cycle mean, by negation.
std::optional<double> min_cycle_mean_karp(const Digraph& g);

/// Binary search on mu using positive-cycle detection: mu* is the largest mu
/// such that weights (w - mu) still admit a non-negative cycle.  Converges
/// to `tolerance`; ablation comparator for Karp (bench E8).
std::optional<double> max_cycle_mean_bsearch(const Digraph& g,
                                             double tolerance = 1e-9);

/// Howard's policy iteration (max-plus spectral algorithm) — the fastest
/// known cycle-mean algorithm in practice [Dasdan's experimental studies],
/// exact like Karp.  Second ablation arm of bench E8.  Throws cs::Error if
/// policy iteration exits on its iteration backstop without converging (an
/// unconverged mean must never silently reach SHIFTS); use the warm-start
/// API below to observe the event through metrics instead.
std::optional<double> max_cycle_mean_howard(const Digraph& g);

/// Sentinel successor for nodes that carry no policy edge (trivial SCCs).
inline constexpr NodeId kNoPolicyEdge = static_cast<NodeId>(-1);

struct HowardResult {
  /// Maximum cycle mean; std::nullopt if the graph is acyclic.
  std::optional<double> mean;

  /// Final policy: chosen successor node per node, kNoPolicyEdge where the
  /// node has no internal out-edge.  Feed back as `warm_policy` on the next
  /// epoch — between consecutive epochs the optimal policy rarely moves, so
  /// the warm-started iteration converges in one or two rounds.
  std::vector<NodeId> policy;

  /// Policy-iteration rounds, summed over SCCs.
  std::size_t iterations{0};

  /// False iff some SCC exhausted its iteration backstop; the mean may then
  /// be below the true maximum.  Reported to `metrics` under
  /// "cycle_mean.howard_backstop_exits".
  bool converged{true};
};

/// Howard's iteration with an optional warm-start policy from a previous,
/// similar graph (nullptr or size-mismatched entries fall back to the greedy
/// initial policy per node) and optional instrumentation.  Counters:
/// "cycle_mean.howard_iterations", "cycle_mean.howard_warm_starts",
/// "cycle_mean.howard_backstop_exits".
HowardResult max_cycle_mean_howard_warm(
    const Digraph& g, const std::vector<NodeId>* warm_policy = nullptr,
    Metrics* metrics = nullptr);

/// Exhaustive enumeration of simple cycles (test oracle; exponential, keep
/// node_count small).
std::optional<double> max_cycle_mean_brute(const Digraph& g);

class EpochArena;

// ---------------------------------------------------------------------------
// Dense kernels for SHIFTS (core/shifts.cpp).
//
// A finiteness component's m̃s entries form a COMPLETE weighted graph, so
// materializing a Digraph per epoch only to tear it apart again inside the
// cycle-mean routines is pure allocation churn.  These kernels run straight
// off a row-major k x k weight matrix (diagonal ignored) with all scratch in
// an EpochArena, and reproduce the graph-based results BIT FOR BIT:
//   * Karp's walk table is a pure min-fold over fixed candidate sets, so
//     the edge iteration order the Digraph path used is irrelevant;
//   * Howard's greedy initialization and two-stage improvement scan
//     successors in ascending index skipping the diagonal — exactly the
//     j-ascending edge order compute_shifts built its complete subgraphs in.
// ---------------------------------------------------------------------------

/// Karp's maximum cycle mean of the complete graph on k >= 2 nodes with
/// arc weights w[i*k + j] (i != j).  Mirrors
/// max_cycle_mean_karp(complete graph) exactly.
double max_cycle_mean_karp_dense(const double* w, std::size_t k,
                                 EpochArena& arena);

struct HowardDenseResult {
  double mean{0.0};
  std::size_t iterations{0};
  bool converged{true};
};

/// Howard's policy iteration on the complete graph on k >= 2 nodes with arc
/// weights w[i*k + j].  `warm` is empty or k entries of seed successors
/// (kNoPolicyEdge = greedy init for that node); `policy` receives the final
/// successor per node (k entries).  Mirrors
/// max_cycle_mean_howard_warm(complete graph) exactly, including the
/// "cycle_mean.howard_*" counters and iteration series.
HowardDenseResult max_cycle_mean_howard_dense(const double* w, std::size_t k,
                                              std::span<const NodeId> warm,
                                              std::span<NodeId> policy,
                                              EpochArena& arena,
                                              Metrics* metrics);

}  // namespace cs
