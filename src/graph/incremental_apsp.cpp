#include "graph/incremental_apsp.hpp"

#include <algorithm>
#include <cmath>

#include "graph/csr.hpp"
#include "graph/johnson.hpp"

namespace cs {
namespace {

inline std::uint64_t edge_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
inline NodeId key_from(std::uint64_t k) {
  return static_cast<NodeId>(k >> 32);
}
inline NodeId key_to(std::uint64_t k) {
  return static_cast<NodeId>(k & 0xffffffffu);
}

/// Conservative tie tolerance for "was this edge on a shortest path":
/// marking a row dirty that was not is only wasted work, missing one is a
/// wrong answer, so lean on the side of dirtiness against float noise.
inline double tie_tol(double reference) {
  return 1e-9 * (1.0 + std::fabs(reference));
}

}  // namespace

IncrementalApsp::EdgeMap IncrementalApsp::condense(const Digraph& g) {
  EdgeMap m;
  m.reserve(g.edge_count());
  for (const Edge& e : g.edges()) {
    auto [it, inserted] = m.try_emplace(edge_key(e.from, e.to), e.weight);
    if (!inserted) it->second = std::min(it->second, e.weight);
  }
  return m;
}

void IncrementalApsp::refresh_potentials() {
  // h(v) = min_i D(i, v) is a valid Johnson potential for the current
  // graph: D(i,v) <= D(i,u) + w(u,v) for every edge (u,v) and source i, and
  // the minimum is finite because D(v,v) = 0.  Folded row-major so the scan
  // walks the matrix in storage order; per column the fold still meets
  // sources in ascending order, so the result is bit-identical to the
  // column-major version.
  potential_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t v = 0; v < n_; ++v)
      potential_[v] = std::min(potential_[v], dist_.at(i, v));
}

bool IncrementalApsp::rebuild(const Digraph& g) {
  metrics_increment(metrics_, "apsp.full_rebuilds");
  last_step_ = StepStats{};
  last_step_.path = StepStats::Path::kExplicitRebuild;
  valid_ = false;
  arena_.reset();
  if (!johnson_into(g, dist_, arena_)) return false;
  n_ = g.node_count();
  weights_ = condense(g);
  refresh_potentials();
  valid_ = true;
  return true;
}

bool IncrementalApsp::update(const Digraph& g) {
  if (!valid_ || g.node_count() != n_) {
    const StepStats::Path path = !valid_ ? StepStats::Path::kColdBuild
                                         : StepStats::Path::kResizeBuild;
    const bool ok = rebuild(g);
    last_step_.path = path;
    return ok;
  }

  const EdgeMap next = condense(g);

  // Delta vs the accepted graph.  A vanished edge is an increase to +inf;
  // a fresh edge is a decrease from +inf.
  struct Delta {
    NodeId from, to;
    double old_w, new_w;
  };
  std::vector<Delta> increases, decreases;
  for (const auto& [key, w_new] : next) {
    const auto it = weights_.find(key);
    const double w_old = (it == weights_.end()) ? kInfDist : it->second;
    if (w_new < w_old)
      decreases.push_back({key_from(key), key_to(key), w_old, w_new});
    else if (w_new > w_old)
      increases.push_back({key_from(key), key_to(key), w_old, w_new});
  }
  for (const auto& [key, w_old] : weights_)
    if (!next.count(key))
      increases.push_back({key_from(key), key_to(key), w_old, kInfDist});

  last_step_ = StepStats{};
  last_step_.decreased_edges = decreases.size();
  last_step_.increased_edges = increases.size();

  if (increases.empty() && decreases.empty()) {
    last_step_.path = StepStats::Path::kNoChange;
    last_step_.incremental = true;
    metrics_increment(metrics_, "apsp.incremental_updates");
    return true;
  }

  // ---- Phase A: weight increases (restricted row recompute) ----
  // A row i is dirty iff some old shortest path out of i ran through an
  // increased edge at its old weight: exists j with
  //   D(i,u) + w_old + D(v,j) == D(i,j)   (to tolerance).
  std::vector<std::uint8_t> dirty(n_, 0);
  std::size_t dirty_count = 0;
  for (const Delta& d : increases) {
    if (d.old_w == kInfDist) continue;
    for (std::size_t i = 0; i < n_; ++i) {
      if (dirty[i]) continue;
      const double via_u = dist_.at(i, d.from);
      if (via_u == kInfDist) continue;
      const double head = via_u + d.old_w;
      for (std::size_t j = 0; j < n_; ++j) {
        const double tail = dist_.at(d.to, j);
        if (tail == kInfDist) continue;
        if (head + tail <= dist_.at(i, j) + tie_tol(dist_.at(i, j))) {
          dirty[i] = 1;
          ++dirty_count;
          break;
        }
      }
    }
  }
  last_step_.dirty_rows = dirty_count;
  metrics_observe(metrics_, "apsp.dirty_rows",
                  static_cast<double>(dirty_count));

  if (static_cast<double>(dirty_count) >
      options_.max_dirty_fraction * static_cast<double>(n_)) {
    metrics_increment(metrics_, "apsp.dirty_fallbacks");
    const bool ok = rebuild(g);
    last_step_.path = StepStats::Path::kDirtyFallback;
    return ok;
  }

  if (dirty_count > 0) {
    // Graph with increases applied but decreases NOT yet applied, reweighted
    // by the previous potentials.  Those potentials stay valid because every
    // weight here is >= its value in the accepted graph.  Built as CSR
    // adjacency straight in the step arena: Dijkstra's distances do not
    // depend on arc order, so the map's iteration order is immaterial.
    arena_.reset();
    std::span<std::uint32_t> row_ptr =
        arena_.alloc_fill<std::uint32_t>(n_ + 1, 0);
    std::size_t live = 0;
    for (const auto& [key, w_new] : next) {
      const auto it = weights_.find(key);
      const double w_old = (it == weights_.end()) ? kInfDist : it->second;
      if (std::max(w_new, w_old) != kInfDist) {  // defer decreases to phase B
        ++row_ptr[key_from(key) + 1];
        ++live;
      }
    }
    // Removed edges are increases to +inf and simply stay absent here.
    for (std::size_t v = 0; v < n_; ++v) row_ptr[v + 1] += row_ptr[v];
    std::span<NodeId> head = arena_.alloc<NodeId>(live);
    std::span<double> rw = arena_.alloc<double>(live);
    {
      std::span<std::uint32_t> cursor = arena_.alloc<std::uint32_t>(n_);
      for (std::size_t v = 0; v < n_; ++v) cursor[v] = row_ptr[v];
      for (const auto& [key, w_new] : next) {
        const auto it = weights_.find(key);
        const double w_old = (it == weights_.end()) ? kInfDist : it->second;
        const double w = std::max(w_new, w_old);
        if (w == kInfDist) continue;
        const NodeId from = key_from(key);
        double r = w + potential_[from] - potential_[key_to(key)];
        if (r < 0.0 && r > -1e-9) r = 0.0;  // float residue, as in johnson()
        const std::uint32_t at = cursor[from]++;
        head[at] = key_to(key);
        rw[at] = r;
      }
    }
    const CsrView view{row_ptr, head, rw};

    std::span<double> sp_dist = arena_.alloc<double>(n_);
    std::vector<std::pair<double, NodeId>> heap;
    heap.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      if (!dirty[i]) continue;
      dijkstra_csr(view, static_cast<NodeId>(i), sp_dist, heap);
      for (std::size_t j = 0; j < n_; ++j) {
        if (sp_dist[j] == kInfDist)
          dist_.at(i, j) = (i == j) ? 0.0 : kInfDist;
        else
          dist_.at(i, j) = sp_dist[j] - potential_[i] + potential_[j];
      }
    }
  }

  // ---- Phase B: weight decreases (exact min-plus updates) ----
  // Applied sequentially: after each edge the matrix is the exact closure of
  // the graph including it, so later decreases compose correctly.
  for (const Delta& d : decreases) {
    // A new negative cycle must run through the cheaper edge: weight
    // w' + D(v, u).
    const double back = dist_.at(d.to, d.from);
    if (back != kInfDist && d.new_w + back < 0.0) {
      valid_ = false;
      metrics_increment(metrics_, "apsp.negative_cycles");
      return false;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      const double head = dist_.at(i, d.from);
      if (head == kInfDist) continue;
      const double via = head + d.new_w;
      for (std::size_t j = 0; j < n_; ++j) {
        const double tail = dist_.at(d.to, j);
        if (tail == kInfDist) continue;
        if (via + tail < dist_.at(i, j)) dist_.at(i, j) = via + tail;
      }
    }
  }

  // Defensive parity with floyd_warshall(): a negative diagonal entry is a
  // negative cycle no matter how it slipped in.
  for (std::size_t i = 0; i < n_; ++i)
    if (dist_.at(i, i) < 0.0) {
      valid_ = false;
      metrics_increment(metrics_, "apsp.negative_cycles");
      return false;
    }

  weights_ = next;
  refresh_potentials();
  last_step_.path = StepStats::Path::kIncremental;
  last_step_.incremental = true;
  metrics_increment(metrics_, "apsp.incremental_updates");
  return true;
}

}  // namespace cs
