// Strongly connected components (Tarjan, iterative).
//
// Cycle-mean computations decompose by SCC: every cycle lies inside one
// component, so Ã^max over a shift graph with missing (infinite) edges is
// the max over per-SCC cycle means.  SCCs of the finite-m̃s graph are also
// the "finiteness components" within which corrections remain well-defined
// when the instance as a whole is unbounded (DESIGN.md §2).
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace cs {

struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (an edge u->v between different SCCs has component[u] > component[v]).
  std::vector<std::size_t> component;
  std::size_t component_count{0};

  /// Nodes of each component, grouped.
  std::vector<std::vector<NodeId>> members() const;
};

SccResult strongly_connected_components(const Digraph& g);

}  // namespace cs
