#include "graph/scc.hpp"

#include <algorithm>
#include <limits>

namespace cs {

std::vector<std::vector<NodeId>> SccResult::members() const {
  std::vector<std::vector<NodeId>> out(component_count);
  for (NodeId v = 0; v < component.size(); ++v)
    out[component[v]].push_back(v);
  return out;
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

  SccResult res;
  res.component.assign(n, kUnset);

  std::vector<std::size_t> index(n, kUnset);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::size_t next_index = 0;

  // Explicit DFS stack: (node, position in its out-edge list).
  struct Frame {
    NodeId v;
    std::size_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto out = g.out_edges(f.v);
      if (f.edge_pos < out.size()) {
        const NodeId w = g.edge(out[f.edge_pos++]).to;
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const NodeId v = f.v;
        dfs.pop_back();
        if (!dfs.empty())
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the Tarjan stack.
          const std::size_t id = res.component_count++;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            res.component[w] = id;
          } while (w != v);
        }
      }
    }
  }
  return res;
}

}  // namespace cs
