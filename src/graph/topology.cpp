#include "graph/topology.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/error.hpp"

namespace cs {

bool Topology::connected() const {
  if (node_count <= 1) return true;
  const auto adj = adjacency();
  std::vector<bool> seen(node_count, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == node_count;
}

std::vector<std::vector<NodeId>> Topology::adjacency() const {
  std::vector<std::vector<NodeId>> adj(node_count);
  for (auto [a, b] : links) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  return adj;
}

Topology make_line(std::size_t n) {
  Topology t{n, {}};
  for (std::size_t i = 0; i + 1 < n; ++i)
    t.links.emplace_back(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  return t;
}

Topology make_ring(std::size_t n) {
  assert(n >= 3);
  Topology t = make_line(n);
  t.links.emplace_back(0, static_cast<NodeId>(n - 1));
  return t;
}

Topology make_circulant(std::size_t n, std::span<const std::size_t> strides) {
  assert(n >= 3);
  Topology t{n, {}};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s : strides) {
      assert(s >= 1 && 2 * s <= n);
      const auto a = static_cast<NodeId>(i);
      const auto b = static_cast<NodeId>((i + s) % n);
      const std::pair<NodeId, NodeId> e{std::min(a, b), std::max(a, b)};
      if (std::find(t.links.begin(), t.links.end(), e) == t.links.end())
        t.links.push_back(e);
    }
  }
  std::sort(t.links.begin(), t.links.end());
  return t;
}

Topology make_star(std::size_t n) {
  assert(n >= 2);
  Topology t{n, {}};
  for (std::size_t i = 1; i < n; ++i)
    t.links.emplace_back(0, static_cast<NodeId>(i));
  return t;
}

Topology make_complete(std::size_t n) {
  Topology t{n, {}};
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      t.links.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
  return t;
}

Topology make_grid(std::size_t width, std::size_t height) {
  assert(width >= 1 && height >= 1);
  Topology t{width * height, {}};
  auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) t.links.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < height) t.links.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return t;
}

Topology make_random_tree(std::size_t n, Rng& rng) {
  Topology t{n, {}};
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = static_cast<NodeId>(rng.uniform_int(i));
    t.links.emplace_back(std::min<NodeId>(parent, static_cast<NodeId>(i)),
                         std::max<NodeId>(parent, static_cast<NodeId>(i)));
  }
  return t;
}

Topology make_connected_gnp(std::size_t n, double p, Rng& rng) {
  assert(p >= 0.0 && p <= 1.0);
  Topology t = make_random_tree(n, rng);
  std::set<std::pair<NodeId, NodeId>> have(t.links.begin(), t.links.end());
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const std::pair<NodeId, NodeId> e{static_cast<NodeId>(a),
                                        static_cast<NodeId>(b)};
      if (!have.contains(e) && rng.uniform01() < p) {
        have.insert(e);
        t.links.push_back(e);
      }
    }
  }
  return t;
}

Topology make_wan(std::size_t n, std::size_t hubs, Rng& rng) {
  assert(hubs >= 3 && hubs <= n);
  Topology t = make_ring(hubs);
  t.node_count = n;
  for (std::size_t i = hubs; i < n; ++i) {
    const auto hub = static_cast<NodeId>(rng.uniform_int(hubs));
    t.links.emplace_back(hub, static_cast<NodeId>(i));
  }
  // A few stub-to-stub cross links for path diversity (~10% of stubs).
  std::set<std::pair<NodeId, NodeId>> have(t.links.begin(), t.links.end());
  const std::size_t extra = (n - hubs) / 10;
  for (std::size_t k = 0; k < extra; ++k) {
    const auto a = static_cast<NodeId>(hubs + rng.uniform_int(n - hubs));
    const auto b = static_cast<NodeId>(hubs + rng.uniform_int(n - hubs));
    if (a == b) continue;
    const std::pair<NodeId, NodeId> e{std::min(a, b), std::max(a, b)};
    if (have.insert(e).second) t.links.push_back(e);
  }
  return t;
}

Topology make_named(const std::string& name, std::size_t n, Rng& rng) {
  if (name == "line") return make_line(n);
  if (name == "ring") return make_ring(n);
  if (name == "star") return make_star(n);
  if (name == "complete") return make_complete(n);
  if (name == "grid") {
    // Nearest square grid not exceeding n nodes in width.
    std::size_t w = 1;
    while ((w + 1) * (w + 1) <= n) ++w;
    return make_grid(w, (n + w - 1) / w);
  }
  if (name == "circulant") {
    const std::size_t strides[] = {1, 2, 3};
    return make_circulant(n, strides);
  }
  if (name == "tree") return make_random_tree(n, rng);
  if (name == "gnp") return make_connected_gnp(n, 0.2, rng);
  if (name == "wan") return make_wan(n, std::max<std::size_t>(3, n / 4), rng);
  fail("unknown topology: " + name);
}

}  // namespace cs
