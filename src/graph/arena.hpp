// EpochArena: reusable bump allocation for per-epoch scratch.
//
// The epoch pipeline re-runs the same shaped computations every boundary —
// Johnson potentials, per-source distance arrays, Karp walk tables, Howard
// policy/value vectors.  Allocating those from the heap each epoch costs
// more than some of the arithmetic they hold; the arena instead carves them
// out of a few large chunks with a pointer bump and recycles the chunks
// wholesale on reset().
//
// Rules of use (documented in docs/PERF.md):
//   * alloc<T>() returns UNINITIALIZED storage; every caller fills it.
//     T must be trivially destructible — nothing is ever destroyed.
//   * reset() invalidates every span handed out since the last reset but
//     retains the chunk capacity, so a steady-state epoch allocates nothing.
//   * One arena serves ONE thread at a time.  Parallel pipeline stages give
//     each worker its own arena (see core/shifts.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace cs {

class EpochArena {
 public:
  EpochArena() = default;
  EpochArena(const EpochArena&) = delete;
  EpochArena& operator=(const EpochArena&) = delete;
  EpochArena(EpochArena&&) = default;
  EpochArena& operator=(EpochArena&&) = default;

  /// Uninitialized storage for `count` objects of T.  The span stays valid
  /// until the next reset().  count == 0 yields an empty span.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destroyed");
    if (count == 0) return {};
    void* p = raw(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Storage for `count` objects, each initialized to `value`.
  template <typename T>
  std::span<T> alloc_fill(std::size_t count, const T& value) {
    std::span<T> s = alloc<T>(count);
    for (T& x : s) x = value;
    return s;
  }

  /// Recycles every allocation since the last reset; capacity is retained,
  /// so a steady-state caller stops touching the heap entirely.
  void reset();

  /// Total bytes reserved across chunks (monitoring/tests).
  std::size_t bytes_reserved() const;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity{0};
  };

  void* raw(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t active_{0};  // chunk currently being bumped
  std::size_t offset_{0};  // bump offset within chunks_[active_]
};

}  // namespace cs
