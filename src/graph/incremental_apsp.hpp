// Delta-aware all-pairs shortest paths for the epoch pipeline.
//
// Periodic re-synchronization (core/epochs) recomputes GLOBAL ESTIMATES on
// every epoch boundary, but consecutive epochs differ in only the few m̃ls
// edges whose link statistics absorbed new traffic — with growing view
// prefixes the estimates even change monotonically (d̃min only shrinks, so
// m̃ls only shrinks).  Recomputing the full APSP closure from scratch wastes
// nearly all of that work.
//
// IncrementalApsp keeps the previous epoch's distance matrix and applies the
// edge-weight delta, Ramalingam–Reps style (restricted recompute of the
// affected part only):
//
//   * weight *decreases* (and new edges) are exact rank-one min-plus
//     updates: D(i,j) <- min(D(i,j), D(i,u) + w' + D(v,j)), O(n^2) per
//     changed edge — no path that uses the cheaper edge more than once can
//     win while the graph has no negative cycle;
//   * weight *increases* (and removed edges, i.e. weight -> +inf) dirty
//     exactly the rows whose old shortest paths were tight through the
//     changed edge; only those rows are recomputed, by Dijkstra under the
//     previous epoch's Johnson potentials (still valid: weights only grew);
//   * when the dirty fraction exceeds a threshold — or the node set changed
//     — it falls back to a full Johnson rebuild, so the worst case never
//     loses to from-scratch by more than the diff scan.
//
// Counter accounting contract (pinned by the path-audit cases in
// tests/graph/incremental_apsp_test.cpp):
//
//   * "apsp.full_rebuilds"       — every rebuild(), whether called directly,
//                                  as a cold/resize bootstrap, or as the
//                                  dirty fallback;
//   * "apsp.dirty_fallbacks"     — only the too-dirty bailout (always paired
//                                  with a full_rebuilds tick);
//   * "apsp.incremental_updates" — every update() that kept the matrix,
//                                  including the no-change fast path;
//   * "apsp.from_scratch_runs" is NOT ours: global_shift_estimates ticks it
//     per full closure, so a bench arm that recomputes from scratch each
//     epoch reports from_scratch_runs == epochs with incremental_hit_rate 0
//     by design (see BENCH_pipeline.json's from_scratch arms).
//
// All per-step scratch (delta lists aside) lives in a private EpochArena
// that is reset and reused each call, so steady-state updates perform no
// per-call heap allocation beyond the condensed edge map.
//
// Equivalence with the from-scratch closure (to float tolerance) is enforced
// by tests/graph/incremental_apsp_test.cpp and the epoch-sequence property
// test in tests/core/incremental_pipeline_test.cpp.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "graph/arena.hpp"
#include "graph/floyd_warshall.hpp"

namespace cs {

struct IncrementalApspOptions {
  /// Full-rebuild fallback threshold: when weight increases dirty more than
  /// this fraction of the rows, restricted recompute loses its advantage.
  double max_dirty_fraction{0.25};
};

class IncrementalApsp {
 public:
  explicit IncrementalApsp(IncrementalApspOptions options = {},
                           Metrics* metrics = nullptr)
      : options_(options), metrics_(metrics) {}

  /// Unconditional full rebuild (Johnson).  Returns false iff `g` has a
  /// negative cycle, in which case the state is invalidated.
  bool rebuild(const Digraph& g);

  /// Applies `g` as a delta against the previously accepted graph, reusing
  /// the previous distance matrix where possible; falls back to rebuild()
  /// when cold, when the node count changed, or when too dirty.  Returns
  /// false iff `g` has a negative cycle (state invalidated).
  bool update(const Digraph& g);

  bool valid() const { return valid_; }

  /// The APSP closure of the last accepted graph.  Only meaningful while
  /// valid().
  const DistanceMatrix& distances() const { return dist_; }

  /// What the last update() did — consumed by metrics and benches.
  struct StepStats {
    /// Which code path the last call took; the audit handle for the counter
    /// contract above (exactly one path per call).
    enum class Path {
      kNone,             ///< no call yet
      kColdBuild,        ///< update() with no prior accepted state
      kResizeBuild,      ///< update() after the node count changed
      kExplicitRebuild,  ///< rebuild() called directly
      kDirtyFallback,    ///< update() bailed out: too many dirty rows
      kNoChange,         ///< update() with an empty delta
      kIncremental,      ///< update() applied the delta in place
    };

    Path path{Path::kNone};
    bool incremental{false};
    std::size_t decreased_edges{0};
    std::size_t increased_edges{0};
    std::size_t dirty_rows{0};
  };
  const StepStats& last_step() const { return last_step_; }

  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

 private:
  /// Condensed edge map (parallel edges collapsed to the minimum weight);
  /// the unit the delta is computed over.
  using EdgeMap = std::unordered_map<std::uint64_t, double>;

  static EdgeMap condense(const Digraph& g);
  void refresh_potentials();

  IncrementalApspOptions options_;
  Metrics* metrics_{nullptr};

  bool valid_{false};
  std::size_t n_{0};
  EdgeMap weights_;              // last accepted graph, condensed
  DistanceMatrix dist_;
  std::vector<double> potential_;  // Johnson potentials for weights_
  StepStats last_step_;
  EpochArena arena_;  // per-step scratch; reset each rebuild()/update()
};

}  // namespace cs
