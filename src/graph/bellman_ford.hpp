// Single-source shortest paths with negative edge weights.
//
// SHIFTS needs distances under weights w(p,q) = Ã^max − m̃s(p,q), which are
// negative whenever a pair's shift estimate exceeds the optimum cycle mean —
// the common case.  Theorem 4.6's argument guarantees no negative cycles;
// we still detect them and report, because a negative cycle reaching the
// pipeline indicates a broken estimator (or an inadmissible execution) and
// must not be silently absorbed.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace cs {

struct ShortestPaths {
  /// dist[v] = distance from source; +inf when unreachable.
  std::vector<double> dist;
  /// pred[v] = edge id of the last edge on a shortest path, or no value for
  /// the source / unreachable nodes.
  std::vector<std::optional<EdgeId>> pred;
};

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Runs Bellman–Ford from `source`.  Returns std::nullopt iff a negative
/// cycle is reachable from the source.  `epsilon` is the relaxation
/// tolerance: improvements of at most `epsilon` are ignored, so cycles whose
/// weight is only negative by float noise (SHIFTS builds weights whose true
/// critical-cycle weight is exactly 0) neither loop the relaxation nor get
/// reported as negative.  Distances may exceed the exact optimum by at most
/// (path length)·epsilon; see DESIGN.md "Numeric tolerance contract".
std::optional<ShortestPaths> bellman_ford(const Digraph& g, NodeId source,
                                          double epsilon = 0.0);

/// True iff the graph contains a negative-weight cycle anywhere (adds a
/// virtual super-source).  `epsilon` guards against float noise: cycles with
/// weight >= -epsilon are not reported.
bool has_negative_cycle(const Digraph& g, double epsilon = 0.0);

}  // namespace cs
