#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "graph/arena.hpp"

namespace cs {

CsrGraph::CsrGraph(const Digraph& g) : n_(g.node_count()) {
  const std::size_t m = g.edge_count();
  const auto edges = g.edges();

  // Stable counting sort by source: per-row arcs stay in insertion (edge
  // id) order, matching the Digraph adjacency lists arc for arc.
  row_ptr_.assign(n_ + 1, 0);
  for (const Edge& e : edges) ++row_ptr_[e.from + 1];
  for (std::size_t v = 0; v < n_; ++v) row_ptr_[v + 1] += row_ptr_[v];
  head_.resize(m);
  weight_.resize(m);
  eid_.resize(m);
  {
    std::vector<std::uint32_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
    for (EdgeId id = 0; id < m; ++id) {
      const Edge& e = edges[id];
      const std::uint32_t at = cursor[e.from]++;
      head_[at] = e.to;
      weight_[at] = e.weight;
      eid_[at] = id;
    }
  }

  // Transpose, same construction keyed by target.
  in_ptr_.assign(n_ + 1, 0);
  for (const Edge& e : edges) ++in_ptr_[e.to + 1];
  for (std::size_t v = 0; v < n_; ++v) in_ptr_[v + 1] += in_ptr_[v];
  in_src_.resize(m);
  in_weight_.resize(m);
  {
    std::vector<std::uint32_t> cursor(in_ptr_.begin(), in_ptr_.end() - 1);
    for (EdgeId id = 0; id < m; ++id) {
      const Edge& e = edges[id];
      const std::uint32_t at = cursor[e.to]++;
      in_src_[at] = e.from;
      in_weight_[at] = e.weight;
    }
  }
}

std::optional<std::vector<double>> bellman_ford_csr(const CsrView& g,
                                                    NodeId source,
                                                    double epsilon) {
  const std::size_t n = g.node_count();
  assert(source < n);
  assert(epsilon >= 0.0);
  std::vector<double> dist(n, kInfDist);
  dist[source] = 0.0;

  const auto sweep = [&]() {
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      const double dv = dist[v];
      if (dv == kInfDist) continue;
      for (std::uint32_t a = g.row_ptr[v]; a < g.row_ptr[v + 1]; ++a) {
        const double cand = dv + g.weight[a];
        if (cand < dist[g.head[a]] - epsilon) {
          dist[g.head[a]] = cand;
          changed = true;
        }
      }
    }
    return changed;
  };

  bool changed = true;
  for (std::size_t round = 0; round + 1 < n && changed; ++round)
    changed = sweep();
  if (changed && sweep()) return std::nullopt;
  return dist;
}

void dijkstra_csr(const CsrView& g, NodeId source, std::span<double> dist,
                  std::vector<std::pair<double, NodeId>>& heap) {
  assert(dist.size() == g.node_count());
  for (double& d : dist) d = kInfDist;
  dist[source] = 0.0;
  heap.clear();
  heap.emplace_back(0.0, source);

  // Lazy-deletion binary heap; min on (distance, node) like the
  // priority_queue the Digraph dijkstra uses.  Distances are tie-order
  // independent either way (exact min over settled predecessor sums).
  const auto cmp = [](const std::pair<double, NodeId>& a,
                      const std::pair<double, NodeId>& b) { return a > b; };
  while (!heap.empty()) {
    const auto [d, v] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), cmp);
    heap.pop_back();
    if (d > dist[v]) continue;  // stale entry
    for (std::uint32_t a = g.row_ptr[v]; a < g.row_ptr[v + 1]; ++a) {
      assert(g.weight[a] >= 0.0);
      const double cand = d + g.weight[a];
      const NodeId to = g.head[a];
      if (cand < dist[to]) {
        dist[to] = cand;
        heap.emplace_back(cand, to);
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
}

SccResult strongly_connected_components_csr(const CsrView& g) {
  const std::size_t n = g.node_count();
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

  SccResult res;
  res.component.assign(n, kUnset);

  std::vector<std::size_t> index(n, kUnset);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::size_t next_index = 0;

  struct Frame {
    NodeId v;
    std::uint32_t arc;  // absolute position in head[]
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    dfs.push_back({root, g.row_ptr[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.arc < g.row_ptr[f.v + 1]) {
        const NodeId w = g.head[f.arc++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, g.row_ptr[w]});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const NodeId v = f.v;
        dfs.pop_back();
        if (!dfs.empty())
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          const std::size_t id = res.component_count++;
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            res.component[w] = id;
          } while (w != v);
        }
      }
    }
  }
  return res;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Karp's DP on one SCC, local indices; mirrors karp_min_on_scc() in
/// cycle_mean.cpp (the min-fold makes arc order irrelevant).
std::optional<double> karp_on_component(
    const CsrView& g, const std::vector<NodeId>& members,
    const std::vector<std::size_t>& comp, std::size_t comp_id,
    std::vector<std::size_t>& local, EpochArena* arena) {
  const std::size_t n = members.size();
  for (std::size_t i = 0; i < n; ++i) local[members[i]] = i;

  bool has_internal_arc = false;
  for (NodeId u : members)
    for (std::uint32_t a = g.row_ptr[u]; a < g.row_ptr[u + 1]; ++a)
      if (comp[g.head[a]] == comp_id) {
        has_internal_arc = true;
        break;
      }
  if (!has_internal_arc) return std::nullopt;  // singleton w/o self-loop

  // d[k*n + v] = min weight of a k-arc walk from local node 0 to v.
  EpochArena fallback;
  EpochArena& mem = arena != nullptr ? *arena : fallback;
  std::span<double> d = mem.alloc_fill<double>((n + 1) * n, kInf);
  d[0] = 0.0;  // d[0][local 0]
  for (std::size_t k = 1; k <= n; ++k) {
    const std::span<double> prev = d.subspan((k - 1) * n, n);
    const std::span<double> cur = d.subspan(k * n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double base = prev[i];
      if (base == kInf) continue;
      const NodeId u = members[i];
      for (std::uint32_t a = g.row_ptr[u]; a < g.row_ptr[u + 1]; ++a) {
        const NodeId to = g.head[a];
        if (comp[to] != comp_id) continue;
        const double cand = base + g.weight[a];
        double& slot = cur[local[to]];
        if (cand < slot) slot = cand;
      }
    }
  }

  double best = kInf;
  const std::span<double> last = d.subspan(n * n, n);
  for (std::size_t v = 0; v < n; ++v) {
    if (last[v] == kInf) continue;
    double worst = -kInf;
    for (std::size_t k = 0; k < n; ++k) {
      const double dk = d[k * n + v];
      if (dk == kInf) continue;
      worst = std::max(worst, (last[v] - dk) / static_cast<double>(n - k));
    }
    if (worst != -kInf) best = std::min(best, worst);
  }
  if (best == kInf) return std::nullopt;
  return best;
}

}  // namespace

std::optional<double> min_cycle_mean_karp_csr(const CsrView& g,
                                              EpochArena* arena) {
  const SccResult scc = strongly_connected_components_csr(g);
  const auto groups = scc.members();
  std::vector<std::size_t> local(g.node_count(),
                                 std::numeric_limits<std::size_t>::max());
  std::optional<double> best;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto r =
        karp_on_component(g, groups[c], scc.component, c, local, arena);
    if (r && (!best || *r < *best)) best = r;
  }
  return best;
}

}  // namespace cs
