#include "graph/dijkstra.hpp"

#include <cassert>
#include <queue>
#include <utility>

namespace cs {

ShortestPaths dijkstra(const Digraph& g, NodeId source) {
  assert(source < g.node_count());
  const std::size_t n = g.node_count();
  ShortestPaths sp;
  sp.dist.assign(n, kInfDist);
  sp.pred.assign(n, std::nullopt);
  sp.dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > sp.dist[v]) continue;  // stale entry
    for (EdgeId id : g.out_edges(v)) {
      const Edge& e = g.edge(id);
      assert(e.weight >= 0.0);
      const double cand = d + e.weight;
      if (cand < sp.dist[e.to]) {
        sp.dist[e.to] = cand;
        sp.pred[e.to] = id;
        heap.emplace(cand, e.to);
      }
    }
  }
  return sp;
}

}  // namespace cs
