#include "graph/arena.hpp"

#include <algorithm>

namespace cs {
namespace {

constexpr std::size_t kMinChunk = 64 * 1024;

inline std::size_t align_up(std::size_t x, std::size_t a) {
  return (x + a - 1) & ~(a - 1);
}

}  // namespace

void EpochArena::reset() {
  active_ = 0;
  offset_ = 0;
}

std::size_t EpochArena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

void* EpochArena::raw(std::size_t bytes, std::size_t align) {
  // Walk forward from the active chunk until one fits; chunks are
  // geometrically sized so the walk is O(1) amortized.
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    const std::size_t at = align_up(offset_, align);
    if (at + bytes <= c.capacity) {
      offset_ = at + bytes;
      return c.data.get() + at;
    }
    ++active_;
    offset_ = 0;
  }
  const std::size_t last = chunks_.empty() ? 0 : chunks_.back().capacity;
  const std::size_t capacity =
      std::max({kMinChunk, 2 * last, align_up(bytes, kMinChunk)});
  Chunk c;
  // new[] storage is aligned for every fundamental type; the arena only
  // serves trivially-destructible PODs (doubles, ids, flags).
  c.data = std::make_unique<std::byte[]>(capacity);
  c.capacity = capacity;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  offset_ = bytes;
  return chunks_.back().data.get();
}

}  // namespace cs
