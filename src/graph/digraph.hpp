// Weighted directed graph, adjacency-list representation.
//
// Used in two roles by the pipeline:
//   * the *network graph* G = (V, E) whose edges carry m̃ls weights
//     (GLOBAL ESTIMATES, Theorem 5.5), and
//   * the *complete shift graph* on processors whose edges carry m̃s weights
//     (SHIFTS, Theorem 4.6, and Karp's cycle-mean computation).
//
// Edge weights are finite doubles; "+inf" weights in the theory are
// represented by *absence* of the edge, which keeps every algorithm here
// free of extended-real arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cs {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

struct Edge {
  NodeId from;
  NodeId to;
  double weight;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count);

  NodeId add_node();
  EdgeId add_edge(NodeId from, NodeId to, double weight);

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  void set_weight(EdgeId e, double w) { edges_[e].weight = w; }

  std::span<const Edge> edges() const { return edges_; }
  std::span<const EdgeId> out_edges(NodeId v) const { return out_[v]; }

  /// Graph with every edge reversed (same ids); used by SCC and by
  /// single-sink distance computations.
  Digraph reversed() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
};

}  // namespace cs
