// Weighted directed graph with a flat, CSR-backed adjacency index.
//
// Used in two roles by the pipeline:
//   * the *network graph* G = (V, E) whose edges carry m̃ls weights
//     (GLOBAL ESTIMATES, Theorem 5.5), and
//   * the *complete shift graph* on processors whose edges carry m̃s weights
//     (SHIFTS, Theorem 4.6, and Karp's cycle-mean computation).
//
// Edge weights are finite doubles; "+inf" weights in the theory are
// represented by *absence* of the edge, which keeps every algorithm here
// free of extended-real arithmetic.
//
// Storage is structure-of-arrays: edges live in one flat vector (id order =
// insertion order), and the per-node adjacency is a compressed-sparse-row
// index (row pointers + one flat id array) built lazily on first query and
// invalidated by mutation.  A stable counting sort keeps each node's edge
// ids in insertion order, so out_edges() returns exactly the sequence the
// old per-node vectors held — order-sensitive consumers (Tarjan's DFS,
// Howard's tie-breaks) see identical traversals.  set_weight() does not
// touch the index.
//
// Thread safety: the lazy index build mutates shared state; call freeze()
// before handing one graph to several threads for read-only use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cs {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

struct Edge {
  NodeId from;
  NodeId to;
  double weight;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count);

  NodeId add_node();
  EdgeId add_edge(NodeId from, NodeId to, double weight);

  std::size_t node_count() const { return nodes_; }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  void set_weight(EdgeId e, double w) { edges_[e].weight = w; }

  std::span<const Edge> edges() const { return edges_; }
  std::span<const EdgeId> out_edges(NodeId v) const {
    if (!index_valid_) build_index();
    return {out_ids_.data() + out_ptr_[v], out_ptr_[v + 1] - out_ptr_[v]};
  }

  /// Builds the adjacency index now (no-op if current).  Required before
  /// sharing one graph across threads for concurrent reads.
  void freeze() const {
    if (!index_valid_) build_index();
  }

  /// Graph with every edge reversed (same ids); used by SCC and by
  /// single-sink distance computations.
  Digraph reversed() const;

 private:
  void build_index() const;

  std::vector<Edge> edges_;
  std::size_t nodes_{0};

  // Lazy CSR adjacency: out_ptr_ has nodes_ + 1 entries once valid;
  // out_ids_ holds edge ids grouped by source, insertion order per node.
  mutable std::vector<std::uint32_t> out_ptr_;
  mutable std::vector<EdgeId> out_ids_;
  mutable bool index_valid_{false};
};

}  // namespace cs
