#include "graph/floyd_warshall.hpp"

#include <algorithm>

namespace cs {

std::optional<DistanceMatrix> floyd_warshall(const Digraph& g) {
  const std::size_t n = g.node_count();
  DistanceMatrix m(n);
  for (const Edge& e : g.edges())
    m.at(e.from, e.to) = std::min(m.at(e.from, e.to), e.weight);

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = m.at(i, k);
      if (dik == kInfDist) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double dkj = m.at(k, j);
        if (dkj == kInfDist) continue;
        m.at(i, j) = std::min(m.at(i, j), dik + dkj);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    if (m.at(i, i) < 0.0) return std::nullopt;
  return m;
}

}  // namespace cs
