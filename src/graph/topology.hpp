// Network topology generators.
//
// A Topology is the *undirected* layout of bidirectional links between
// processors; the simulator instantiates each link as a pair of directed
// channels, and the pipeline builds directed m̃ls edges per direction.
// Generators cover the shapes the experiments sweep: paths and rings (where
// cycle-mean structure is easy to reason about), stars/trees (no cycles
// beyond two-edge p->q->p ones), complete graphs (the Lundelius-Lynch
// setting), grids, and random graphs for WAN-like heterogeneity.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/digraph.hpp"

namespace cs {

struct Topology {
  std::size_t node_count{0};
  /// Unordered pairs (a, b), a < b, no duplicates.
  std::vector<std::pair<NodeId, NodeId>> links;

  std::size_t link_count() const { return links.size(); }

  /// True iff the undirected graph is connected (vacuously true for n <= 1).
  bool connected() const;

  /// Neighbor lists (undirected).
  std::vector<std::vector<NodeId>> adjacency() const;
};

Topology make_line(std::size_t n);
Topology make_ring(std::size_t n);
Topology make_star(std::size_t n);  ///< node 0 is the hub
Topology make_complete(std::size_t n);
Topology make_grid(std::size_t width, std::size_t height);

/// Circulant ring: node i links to i ± s (mod n) for each stride s.  With
/// strides {1, 2, 3} the graph is 6-connected — the chorded ring the
/// Byzantine quorum validation needs (connectivity > 2f; a bare cycle's
/// connectivity 2 cannot localize even one liar).  Strides must satisfy
/// 1 <= s <= n/2.
Topology make_circulant(std::size_t n, std::span<const std::size_t> strides);

/// Uniform random spanning tree over n nodes (random attachment).
Topology make_random_tree(std::size_t n, Rng& rng);

/// G(n, p) conditioned on connectivity: a random tree backbone plus each
/// remaining pair independently with probability p.
Topology make_connected_gnp(std::size_t n, double p, Rng& rng);

/// WAN-like two-level topology: a backbone ring of `hubs` nodes, remaining
/// nodes attached to a random hub, plus a few random cross links.
Topology make_wan(std::size_t n, std::size_t hubs, Rng& rng);

/// Parse by name for bench command lines: "line", "ring", "star",
/// "complete", "grid", "tree", "gnp", "wan".  Throws cs::Error on unknown
/// names.
Topology make_named(const std::string& name, std::size_t n, Rng& rng);

}  // namespace cs
