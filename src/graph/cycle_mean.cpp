#include "graph/cycle_mean.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "graph/arena.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/scc.hpp"

namespace cs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Karp's minimum cycle mean on one strongly connected subgraph, given by
/// the member nodes (with at least one edge inside).  Uses local indices.
std::optional<double> karp_min_on_scc(const Digraph& g,
                                      const std::vector<NodeId>& members,
                                      const std::vector<std::size_t>& comp,
                                      std::size_t comp_id) {
  const std::size_t n = members.size();
  std::vector<std::size_t> local(g.node_count(),
                                 std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < n; ++i) local[members[i]] = i;

  // Edges internal to the SCC, in local indices.
  struct LEdge {
    std::size_t from, to;
    double w;
  };
  std::vector<LEdge> edges;
  for (const Edge& e : g.edges())
    if (comp[e.from] == comp_id && comp[e.to] == comp_id)
      edges.push_back({local[e.from], local[e.to], e.weight});
  if (edges.empty()) return std::nullopt;  // singleton without self-loop

  // D[k][v] = min weight of a walk with exactly k edges from the source
  // (node 0 of the SCC) to v; strong connectivity makes the choice of
  // source irrelevant to the final min-max.
  std::vector<std::vector<double>> d(n + 1, std::vector<double>(n, kInf));
  d[0][0] = 0.0;
  for (std::size_t k = 1; k <= n; ++k)
    for (const LEdge& e : edges)
      if (d[k - 1][e.from] != kInf)
        d[k][e.to] = std::min(d[k][e.to], d[k - 1][e.from] + e.w);

  double best = kInf;
  for (std::size_t v = 0; v < n; ++v) {
    if (d[n][v] == kInf) continue;
    double worst = -kInf;
    for (std::size_t k = 0; k < n; ++k) {
      if (d[k][v] == kInf) continue;
      worst = std::max(worst, (d[n][v] - d[k][v]) /
                                  static_cast<double>(n - k));
    }
    if (worst != -kInf) best = std::min(best, worst);
  }
  if (best == kInf) return std::nullopt;
  return best;
}

bool graph_has_cycle(const Digraph& g) {
  const SccResult scc = strongly_connected_components(g);
  std::vector<std::size_t> sizes(scc.component_count, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) ++sizes[scc.component[v]];
  for (const Edge& e : g.edges()) {
    if (e.from == e.to) return true;  // self-loop
    if (scc.component[e.from] == scc.component[e.to] &&
        sizes[scc.component[e.from]] > 1)
      return true;
  }
  return false;
}

}  // namespace

std::optional<double> min_cycle_mean_karp(const Digraph& g) {
  const SccResult scc = strongly_connected_components(g);
  const auto groups = scc.members();
  std::optional<double> best;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto r = karp_min_on_scc(g, groups[c], scc.component, c);
    if (r && (!best || *r < *best)) best = r;
  }
  return best;
}

std::optional<double> max_cycle_mean_karp(const Digraph& g) {
  Digraph neg(g.node_count());
  for (const Edge& e : g.edges()) neg.add_edge(e.from, e.to, -e.weight);
  const auto r = min_cycle_mean_karp(neg);
  if (!r) return std::nullopt;
  return -*r;
}

std::optional<double> max_cycle_mean_bsearch(const Digraph& g,
                                             double tolerance) {
  assert(tolerance > 0.0);
  if (!graph_has_cycle(g)) return std::nullopt;

  double lo = kInf, hi = -kInf;
  for (const Edge& e : g.edges()) {
    lo = std::min(lo, e.weight);
    hi = std::max(hi, e.weight);
  }
  // Invariant: max mean in [lo, hi].  A cycle of mean > mu exists iff the
  // graph with weights (mu - w) has a negative cycle.
  auto exceeds = [&](double mu) {
    Digraph shifted(g.node_count());
    for (const Edge& e : g.edges())
      shifted.add_edge(e.from, e.to, mu - e.weight);
    return has_negative_cycle(shifted);
  };
  while (hi - lo > tolerance) {
    const double mid = lo + (hi - lo) / 2.0;
    if (exceeds(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo + (hi - lo) / 2.0;
}

namespace {

struct HowardSccResult {
  double mean{0.0};
  std::vector<std::size_t> policy;  // chosen edge index per local node
  std::size_t iterations{0};
  bool converged{true};
};

/// Howard's policy iteration on one SCC (local indices, internal edges).
/// Every node of a non-trivial SCC has an internal out-edge, so policies
/// are total.  `initial_policy` optionally seeds per-node edge choices
/// (entries of edges.size() mean "no seed, use greedy") — warm starts from
/// the previous epoch's optimal policy typically converge in one round.
HowardSccResult howard_on_scc(
    std::size_t n, const std::vector<Edge>& edges,
    const std::vector<std::vector<std::size_t>>& out,
    const std::vector<std::size_t>* initial_policy) {
  constexpr double kTol = 1e-12;
  // Initial policy: the seed where given, else per-node heaviest out-edge
  // (greedy).
  std::vector<std::size_t> policy(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (initial_policy != nullptr && (*initial_policy)[v] < edges.size()) {
      policy[v] = (*initial_policy)[v];
      continue;
    }
    std::size_t best = out[v].front();
    for (std::size_t e : out[v])
      if (edges[e].weight > edges[best].weight) best = e;
    policy[v] = best;
  }

  std::vector<double> eta(n, 0.0);   // cycle mean of v's attractor
  std::vector<double> value(n, 0.0);  // bias within the attractor's basin

  // Iteration bound is a float-robustness backstop; policy iteration
  // terminates far sooner on real inputs.  Exiting through it is reported
  // to the caller via `converged`, never silently absorbed.
  HowardSccResult result;
  result.converged = false;
  const std::size_t max_iters = 20 * n + 100;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    // ---- Value determination over the functional policy graph ----
    std::vector<std::uint8_t> state(n, 0);  // 0 new, 1 on path, 2 done
    for (std::size_t start = 0; start < n; ++start) {
      if (state[start] != 0) continue;
      std::vector<std::size_t> path;
      std::size_t u = start;
      while (state[u] == 0) {
        state[u] = 1;
        path.push_back(u);
        u = edges[policy[u]].to;
      }
      if (state[u] == 1) {
        // Found a new policy cycle; locate it within `path`.
        std::size_t pos = path.size();
        while (pos > 0 && path[pos - 1] != u) --pos;
        --pos;  // path[pos] == u
        double total = 0.0;
        for (std::size_t i = pos; i < path.size(); ++i)
          total += edges[policy[path[i]]].weight;
        const double mean = total / static_cast<double>(path.size() - pos);
        // Values around the cycle: anchor the entry node at 0, then walk
        // the cycle backwards so v(x) = w(x, pi x) - mean + v(pi x).
        value[u] = 0.0;
        eta[u] = mean;
        for (std::size_t i = path.size(); i-- > pos + 1;) {
          const std::size_t x = path[i];
          eta[x] = mean;
          value[x] = edges[policy[x]].weight - mean +
                     value[edges[policy[x]].to];
          state[x] = 2;
        }
        state[u] = 2;
        // Prefix of the path (tree part feeding the cycle).
        for (std::size_t i = pos; i-- > 0;) {
          const std::size_t x = path[i];
          eta[x] = mean;
          value[x] = edges[policy[x]].weight - mean +
                     value[edges[policy[x]].to];
          state[x] = 2;
        }
      } else {
        // Path attaches to an already-valued region.
        for (std::size_t i = path.size(); i-- > 0;) {
          const std::size_t x = path[i];
          eta[x] = eta[edges[policy[x]].to];
          value[x] = edges[policy[x]].weight - eta[x] +
                     value[edges[policy[x]].to];
          state[x] = 2;
        }
      }
    }

    // ---- Policy improvement (two-stage, multi-chain) ----
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      // Stage 1: reach an attractor with a larger mean.
      std::size_t best = policy[v];
      double best_eta = eta[edges[best].to];
      for (std::size_t e : out[v]) {
        if (eta[edges[e].to] > best_eta + kTol) {
          best = e;
          best_eta = eta[edges[e].to];
        }
      }
      if (best != policy[v]) {
        policy[v] = best;
        changed = true;
        continue;
      }
      // Stage 2: among equal-mean successors, improve the bias.
      double best_val =
          edges[policy[v]].weight - eta[v] + value[edges[policy[v]].to];
      for (std::size_t e : out[v]) {
        if (eta[edges[e].to] < eta[v] - kTol) continue;
        const double cand =
            edges[e].weight - eta[v] + value[edges[e].to];
        if (cand > best_val + kTol) {
          best_val = cand;
          policy[v] = e;
          changed = true;
        }
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }

  double best = eta[0];
  for (double x : eta) best = std::max(best, x);
  result.mean = best;
  result.policy = std::move(policy);
  return result;
}

}  // namespace

HowardResult max_cycle_mean_howard_warm(
    const Digraph& g, const std::vector<NodeId>* warm_policy,
    Metrics* metrics) {
  if (warm_policy != nullptr && warm_policy->size() != g.node_count())
    warm_policy = nullptr;
  if (warm_policy != nullptr)
    metrics_increment(metrics, "cycle_mean.howard_warm_starts");

  HowardResult result;
  result.policy.assign(g.node_count(), kNoPolicyEdge);

  const SccResult scc = strongly_connected_components(g);
  const auto groups = scc.members();
  for (std::size_t c = 0; c < groups.size(); ++c) {
    const auto& members = groups[c];
    std::vector<std::size_t> local(g.node_count(),
                                   std::numeric_limits<std::size_t>::max());
    for (std::size_t i = 0; i < members.size(); ++i) local[members[i]] = i;
    std::vector<Edge> edges;
    std::vector<std::vector<std::size_t>> out(members.size());
    for (const Edge& e : g.edges()) {
      if (scc.component[e.from] == c && scc.component[e.to] == c) {
        out[local[e.from]].push_back(edges.size());
        edges.push_back(Edge{static_cast<NodeId>(local[e.from]),
                             static_cast<NodeId>(local[e.to]), e.weight});
      }
    }
    if (edges.empty()) continue;  // singleton without self-loop: no cycle

    // Map the warm successor of each member to an internal edge: the
    // heaviest parallel edge towards that successor, if it still exists in
    // this SCC.  Everything else falls back to greedy inside howard_on_scc.
    std::vector<std::size_t> seed;
    if (warm_policy != nullptr) {
      seed.assign(members.size(), edges.size());
      for (std::size_t i = 0; i < members.size(); ++i) {
        const NodeId want = (*warm_policy)[members[i]];
        if (want == kNoPolicyEdge || want >= g.node_count()) continue;
        if (scc.component[want] != c) continue;
        const std::size_t want_local = local[want];
        for (std::size_t e : out[i]) {
          if (edges[e].to != want_local) continue;
          if (seed[i] == edges.size() ||
              edges[e].weight > edges[seed[i]].weight)
            seed[i] = e;
        }
      }
    }

    const HowardSccResult r = howard_on_scc(
        members.size(), edges, out, seed.empty() ? nullptr : &seed);
    result.iterations += r.iterations;
    if (!r.converged) {
      result.converged = false;
      metrics_increment(metrics, "cycle_mean.howard_backstop_exits");
    }
    for (std::size_t i = 0; i < members.size(); ++i)
      result.policy[members[i]] = members[edges[r.policy[i]].to];
    if (!result.mean || r.mean > *result.mean) result.mean = r.mean;
  }
  metrics_observe(metrics, "cycle_mean.howard_iterations",
                  static_cast<double>(result.iterations));
  return result;
}

std::optional<double> max_cycle_mean_howard(const Digraph& g) {
  const HowardResult r = max_cycle_mean_howard_warm(g);
  if (!r.converged)
    throw Error(
        "max_cycle_mean_howard: policy iteration exhausted its backstop "
        "without converging; the mean would be unreliable");
  return r.mean;
}

double max_cycle_mean_karp_dense(const double* w, std::size_t k,
                                 EpochArena& arena) {
  assert(k >= 2);
  // Same walk table as karp_min_on_scc over the NEGATED complete graph
  // (max mean = -min mean of -w), flattened: d[step*k + v] = min weight of
  // a walk with exactly `step` arcs from node 0 to v.  The DP is a pure
  // min-fold, so visiting arcs (i, j) in any order reproduces the
  // edge-list result bit for bit.
  std::span<double> d = arena.alloc_fill<double>((k + 1) * k, kInf);
  d[0] = 0.0;
  for (std::size_t step = 1; step <= k; ++step) {
    const std::span<double> prev = d.subspan((step - 1) * k, k);
    const std::span<double> cur = d.subspan(step * k, k);
    for (std::size_t i = 0; i < k; ++i) {
      const double base = prev[i];
      if (base == kInf) continue;
      const double* wi = w + i * k;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        const double cand = base + (-wi[j]);
        if (cand < cur[j]) cur[j] = cand;
      }
    }
  }

  double best = kInf;
  const std::span<double> last = d.subspan(k * k, k);
  for (std::size_t v = 0; v < k; ++v) {
    if (last[v] == kInf) continue;
    double worst = -kInf;
    for (std::size_t step = 0; step < k; ++step) {
      const double dv = d[step * k + v];
      if (dv == kInf) continue;
      worst = std::max(worst, (last[v] - dv) / static_cast<double>(k - step));
    }
    if (worst != -kInf) best = std::min(best, worst);
  }
  // A complete graph on k >= 2 nodes is strongly connected and cyclic.
  assert(best != kInf);
  return -best;
}

HowardDenseResult max_cycle_mean_howard_dense(const double* w, std::size_t k,
                                              std::span<const NodeId> warm,
                                              std::span<NodeId> policy,
                                              EpochArena& arena,
                                              Metrics* metrics) {
  assert(k >= 2 && policy.size() == k);
  assert(warm.empty() || warm.size() == k);
  constexpr double kTol = 1e-12;
  if (!warm.empty())
    metrics_increment(metrics, "cycle_mean.howard_warm_starts");

  // Initial policy: the warm seed where it names a valid successor in this
  // component, else the per-node heaviest out-arc scanned j-ascending —
  // the first strict maximum wins, exactly as the edge-list variant's
  // out[v] scan (built j-ascending) behaved.
  for (std::size_t v = 0; v < k; ++v) {
    if (!warm.empty() && warm[v] < k && warm[v] != v) {
      policy[v] = warm[v];
      continue;
    }
    std::size_t best = (v == 0) ? 1 : 0;
    const double* wv = w + v * k;
    for (std::size_t j = 0; j < k; ++j) {
      if (j == v) continue;
      if (wv[j] > wv[best]) best = j;
    }
    policy[v] = static_cast<NodeId>(best);
  }

  std::span<double> eta = arena.alloc_fill<double>(k, 0.0);
  std::span<double> value = arena.alloc_fill<double>(k, 0.0);
  std::span<std::uint8_t> state = arena.alloc<std::uint8_t>(k);
  std::vector<std::size_t> path;
  path.reserve(k);

  const auto arc_w = [&](std::size_t x) { return w[x * k + policy[x]]; };

  HowardDenseResult result;
  result.converged = false;
  const std::size_t max_iters = 20 * k + 100;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    // ---- Value determination over the functional policy graph ----
    for (std::size_t v = 0; v < k; ++v) state[v] = 0;
    for (std::size_t start = 0; start < k; ++start) {
      if (state[start] != 0) continue;
      path.clear();
      std::size_t u = start;
      while (state[u] == 0) {
        state[u] = 1;
        path.push_back(u);
        u = policy[u];
      }
      if (state[u] == 1) {
        std::size_t pos = path.size();
        while (pos > 0 && path[pos - 1] != u) --pos;
        --pos;  // path[pos] == u
        double total = 0.0;
        for (std::size_t i = pos; i < path.size(); ++i)
          total += arc_w(path[i]);
        const double mean = total / static_cast<double>(path.size() - pos);
        value[u] = 0.0;
        eta[u] = mean;
        for (std::size_t i = path.size(); i-- > pos + 1;) {
          const std::size_t x = path[i];
          eta[x] = mean;
          value[x] = arc_w(x) - mean + value[policy[x]];
          state[x] = 2;
        }
        state[u] = 2;
        for (std::size_t i = pos; i-- > 0;) {
          const std::size_t x = path[i];
          eta[x] = mean;
          value[x] = arc_w(x) - mean + value[policy[x]];
          state[x] = 2;
        }
      } else {
        for (std::size_t i = path.size(); i-- > 0;) {
          const std::size_t x = path[i];
          eta[x] = eta[policy[x]];
          value[x] = arc_w(x) - eta[x] + value[policy[x]];
          state[x] = 2;
        }
      }
    }

    // ---- Policy improvement (two-stage, multi-chain) ----
    bool improved = false;
    for (std::size_t v = 0; v < k; ++v) {
      const double* wv = w + v * k;
      std::size_t best = policy[v];
      double best_eta = eta[best];
      for (std::size_t j = 0; j < k; ++j) {
        if (j == v) continue;
        if (eta[j] > best_eta + kTol) {
          best = j;
          best_eta = eta[j];
        }
      }
      if (best != policy[v]) {
        policy[v] = static_cast<NodeId>(best);
        improved = true;
        continue;
      }
      double best_val = arc_w(v) - eta[v] + value[policy[v]];
      for (std::size_t j = 0; j < k; ++j) {
        if (j == v) continue;
        if (eta[j] < eta[v] - kTol) continue;
        const double cand = wv[j] - eta[v] + value[j];
        if (cand > best_val + kTol) {
          best_val = cand;
          policy[v] = static_cast<NodeId>(j);
          improved = true;
        }
      }
    }
    if (!improved) {
      result.converged = true;
      break;
    }
  }

  double best = eta[0];
  for (std::size_t v = 1; v < k; ++v) best = std::max(best, eta[v]);
  result.mean = best;
  if (!result.converged)
    metrics_increment(metrics, "cycle_mean.howard_backstop_exits");
  metrics_observe(metrics, "cycle_mean.howard_iterations",
                  static_cast<double>(result.iterations));
  return result;
}

std::optional<double> max_cycle_mean_brute(const Digraph& g) {
  const std::size_t n = g.node_count();
  assert(n <= 16 && "brute-force oracle is exponential");
  std::optional<double> best;

  // DFS for simple cycles whose minimum node is the start node (each simple
  // cycle is enumerated exactly once).
  std::vector<bool> on_path(n, false);
  struct Frame {
    NodeId v;
    std::size_t pos;
    double weight;
    std::size_t len;
  };
  for (NodeId start = 0; start < n; ++start) {
    std::vector<Frame> stack;
    stack.push_back({start, 0, 0.0, 0});
    on_path[start] = true;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto out = g.out_edges(f.v);
      if (f.pos < out.size()) {
        const Edge& e = g.edge(out[f.pos++]);
        if (e.to == start) {
          const double mean =
              (f.weight + e.weight) / static_cast<double>(f.len + 1);
          if (!best || mean > *best) best = mean;
        } else if (e.to > start && !on_path[e.to]) {
          on_path[e.to] = true;
          stack.push_back({e.to, 0, f.weight + e.weight, f.len + 1});
        }
      } else {
        on_path[f.v] = false;
        stack.pop_back();
      }
    }
  }
  return best;
}

}  // namespace cs
