// Johnson's all-pairs shortest paths: one Bellman–Ford pass to compute
// potentials, then Dijkstra from every node on the reweighted graph.
// Asymptotically better than Floyd–Warshall on the sparse network graphs
// GLOBAL ESTIMATES runs over (O(nm + n^2 log n) vs O(n^3)).
#pragma once

#include <optional>

#include "graph/floyd_warshall.hpp"

namespace cs {

class EpochArena;

/// Returns std::nullopt iff the graph has a negative cycle.
std::optional<DistanceMatrix> johnson(const Digraph& g);

/// In-place variant for the epoch hot path: fills `out` (resized to the
/// node count) and draws every piece of scratch — potentials, the
/// reweighted CSR arrays, per-source distance rows — from `arena` instead
/// of the heap.  The caller owns the arena's lifetime; allocations from
/// this call are dead once it returns, so reset() is safe immediately
/// after.  Returns false iff the graph has a negative cycle (out is then
/// unspecified).  Produces bit-identical distances to johnson(): the
/// super-source Bellman–Ford is replaced by the equivalent all-zero
/// initialization, and Dijkstra distances are relaxation-order invariant.
bool johnson_into(const Digraph& g, DistanceMatrix& out, EpochArena& arena);

}  // namespace cs
