// Johnson's all-pairs shortest paths: one Bellman–Ford pass to compute
// potentials, then Dijkstra from every node on the reweighted graph.
// Asymptotically better than Floyd–Warshall on the sparse network graphs
// GLOBAL ESTIMATES runs over (O(nm + n^2 log n) vs O(n^3)).
#pragma once

#include <optional>

#include "graph/floyd_warshall.hpp"

namespace cs {

/// Returns std::nullopt iff the graph has a negative cycle.
std::optional<DistanceMatrix> johnson(const Digraph& g);

}  // namespace cs
