// Compressed-sparse-row graph core.
//
// CsrGraph is the flat, structure-of-arrays snapshot of a Digraph: arcs
// grouped by source node into three parallel arrays (head, weight, original
// edge id), indexed by a row-pointer array.  Within a row, arcs keep the
// Digraph's insertion order, so every order-sensitive traversal (Tarjan's
// DFS, Howard's tie-breaks) sees exactly the adjacency sequence the
// pointer-based representation exposed — the algorithm ports below are
// bit-identical to their Digraph counterparts, which the property test
// tests/graph/csr_test.cpp enforces on golden models and random instances.
//
// The transpose (in-arcs grouped by target) is materialized once at build,
// so transpose() is an O(1) view — single-sink problems run on the same
// snapshot without re-reversing the graph.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace cs {

class EpochArena;

/// Non-owning flat adjacency: row_ptr has n+1 entries; arc k of node v is
/// head[row_ptr[v] + k] with weight weight[row_ptr[v] + k].
struct CsrView {
  std::span<const std::uint32_t> row_ptr;
  std::span<const NodeId> head;
  std::span<const double> weight;

  std::size_t node_count() const {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  std::size_t arc_count() const { return head.size(); }
  std::span<const NodeId> heads(NodeId v) const {
    return head.subspan(row_ptr[v], row_ptr[v + 1] - row_ptr[v]);
  }
};

class CsrGraph {
 public:
  CsrGraph() = default;
  /// Snapshot of `g`: stable grouping by source (insertion order within
  /// each row) plus the materialized transpose.
  explicit CsrGraph(const Digraph& g);

  std::size_t node_count() const { return n_; }
  std::size_t arc_count() const { return head_.size(); }

  CsrView view() const { return {row_ptr_, head_, weight_}; }
  /// O(1): arcs grouped by target; weights match the forward arcs.
  CsrView transpose() const { return {in_ptr_, in_src_, in_weight_}; }

  /// Original Digraph edge id of forward arc `a` (position in view()).
  EdgeId edge_id(std::size_t a) const { return eid_[a]; }

 private:
  std::size_t n_{0};
  std::vector<std::uint32_t> row_ptr_;  // n+1
  std::vector<NodeId> head_;            // m, insertion order per row
  std::vector<double> weight_;          // m
  std::vector<EdgeId> eid_;             // m, original edge ids

  std::vector<std::uint32_t> in_ptr_;   // n+1
  std::vector<NodeId> in_src_;          // m, by target, edge-id order per row
  std::vector<double> in_weight_;       // m
};

/// Bellman–Ford distances on the CSR view (single source, epsilon-tolerant
/// relaxation as in bellman_ford()).  Distances equal the Digraph variant's
/// exactly: with epsilon == 0 both converge to the same min-over-path-sums
/// fixpoint regardless of relaxation order.  Returns std::nullopt on a
/// negative cycle.  Predecessors are not produced — the sweep order differs
/// from edge-id order, so only distances are order-invariant.
std::optional<std::vector<double>> bellman_ford_csr(const CsrView& g,
                                                    NodeId source,
                                                    double epsilon = 0.0);

/// Dijkstra distances (non-negative weights) into `dist` (size n, filled
/// with kInfDist/0).  `heap` is reusable scratch.  Exactly equal to
/// dijkstra()'s distances: each settled value is the exact float min over
/// its candidate predecessor sums, independent of tie order.
void dijkstra_csr(const CsrView& g, NodeId source, std::span<double> dist,
                  std::vector<std::pair<double, NodeId>>& heap);

/// Tarjan SCC on the CSR view — identical component ids to
/// strongly_connected_components(): the DFS consumes each row in the same
/// order the Digraph adjacency lists held.
SccResult strongly_connected_components_csr(const CsrView& g);

/// Karp minimum cycle mean over all SCCs (exact equal to
/// min_cycle_mean_karp(): the walk table is a pure min-fold, so arc order
/// is irrelevant).  `arena`, when given, holds the O(n^2) walk table.
std::optional<double> min_cycle_mean_karp_csr(const CsrView& g,
                                              EpochArena* arena = nullptr);

}  // namespace cs
