#include "graph/digraph.hpp"

#include <cassert>
#include <cmath>

namespace cs {

Digraph::Digraph(std::size_t node_count) : nodes_(node_count) {}

NodeId Digraph::add_node() {
  index_valid_ = false;
  return static_cast<NodeId>(nodes_++);
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, double weight) {
  assert(from < node_count() && to < node_count());
  assert(std::isfinite(weight));
  edges_.push_back(Edge{from, to, weight});
  index_valid_ = false;
  return static_cast<EdgeId>(edges_.size() - 1);
}

void Digraph::build_index() const {
  // Stable counting sort by source: ascending edge id within each node is
  // exactly insertion order, the order the per-node vectors used to hold.
  out_ptr_.assign(nodes_ + 1, 0);
  for (const Edge& e : edges_) ++out_ptr_[e.from + 1];
  for (std::size_t v = 0; v < nodes_; ++v) out_ptr_[v + 1] += out_ptr_[v];
  out_ids_.resize(edges_.size());
  std::vector<std::uint32_t> cursor(out_ptr_.begin(), out_ptr_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id)
    out_ids_[cursor[edges_[id].from]++] = id;
  index_valid_ = true;
}

Digraph Digraph::reversed() const {
  Digraph r(node_count());
  r.edges_.reserve(edges_.size());
  for (const Edge& e : edges_) r.add_edge(e.to, e.from, e.weight);
  return r;
}

}  // namespace cs
