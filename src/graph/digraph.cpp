#include "graph/digraph.hpp"

#include <cassert>
#include <cmath>

namespace cs {

Digraph::Digraph(std::size_t node_count) : out_(node_count) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

EdgeId Digraph::add_edge(NodeId from, NodeId to, double weight) {
  assert(from < node_count() && to < node_count());
  assert(std::isfinite(weight));
  edges_.push_back(Edge{from, to, weight});
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_[from].push_back(id);
  return id;
}

Digraph Digraph::reversed() const {
  Digraph r(node_count());
  for (const Edge& e : edges_) r.add_edge(e.to, e.from, e.weight);
  return r;
}

}  // namespace cs
