#include "graph/bellman_ford.hpp"

#include <cassert>

namespace cs {
namespace {

/// One relaxation sweep; returns true if any distance improved by more than
/// `epsilon`.
bool relax_all(const Digraph& g, std::vector<double>& dist,
               std::vector<std::optional<EdgeId>>& pred, double epsilon) {
  bool changed = false;
  for (EdgeId id = 0; id < g.edge_count(); ++id) {
    const Edge& e = g.edge(id);
    if (dist[e.from] == kInfDist) continue;
    const double cand = dist[e.from] + e.weight;
    if (cand < dist[e.to] - epsilon) {
      dist[e.to] = cand;
      pred[e.to] = id;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

std::optional<ShortestPaths> bellman_ford(const Digraph& g, NodeId source,
                                          double epsilon) {
  assert(source < g.node_count());
  assert(epsilon >= 0.0);
  const std::size_t n = g.node_count();
  ShortestPaths sp;
  sp.dist.assign(n, kInfDist);
  sp.pred.assign(n, std::nullopt);
  sp.dist[source] = 0.0;

  bool changed = true;
  for (std::size_t round = 0; round + 1 < n && changed; ++round)
    changed = relax_all(g, sp.dist, sp.pred, epsilon);

  // If an n-th sweep still relaxes, a negative cycle is reachable.
  if (changed && relax_all(g, sp.dist, sp.pred, epsilon)) return std::nullopt;
  return sp;
}

bool has_negative_cycle(const Digraph& g, double epsilon) {
  const std::size_t n = g.node_count();
  if (n == 0) return false;
  // Virtual super-source: start every node at distance 0.
  std::vector<double> dist(n, 0.0);
  std::vector<std::optional<EdgeId>> pred(n, std::nullopt);
  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round)
    changed = relax_all(g, dist, pred, epsilon);
  return changed;
}

}  // namespace cs
