// Dijkstra single-source shortest paths (non-negative weights).  Building
// block of Johnson's APSP; also used directly on reweighted graphs.
#pragma once

#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"

namespace cs {

/// Precondition: all edge weights >= 0 (asserted in debug builds).
ShortestPaths dijkstra(const Digraph& g, NodeId source);

}  // namespace cs
