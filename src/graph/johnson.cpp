#include "graph/johnson.hpp"

#include <vector>

#include "graph/arena.hpp"
#include "graph/csr.hpp"

namespace cs {

bool johnson_into(const Digraph& g, DistanceMatrix& out, EpochArena& arena) {
  const std::size_t n = g.node_count();
  const std::size_t m = g.edge_count();
  const auto edges = g.edges();
  out.reset(n);
  if (n == 0) return true;

  // Potentials: Bellman–Ford from a super-source with zero-weight edges to
  // every node.  Its first sweep just sets every distance to 0, so start
  // from the all-zero vector and sweep the real edges in id order — the
  // same relaxation sequence the explicit augmented graph produced.
  std::span<double> h = arena.alloc_fill<double>(n, 0.0);
  const auto sweep = [&]() {
    bool changed = false;
    for (const Edge& e : edges) {
      const double cand = h[e.from] + e.weight;
      if (cand < h[e.to]) {
        h[e.to] = cand;
        changed = true;
      }
    }
    return changed;
  };
  bool changed = true;
  for (std::size_t round = 0; round + 1 < n && changed; ++round)
    changed = sweep();
  if (changed && sweep()) return false;  // negative cycle

  // Reweighted CSR adjacency: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  std::span<std::uint32_t> row_ptr = arena.alloc_fill<std::uint32_t>(n + 1, 0);
  std::span<NodeId> head = arena.alloc<NodeId>(m);
  std::span<double> rw = arena.alloc<double>(m);
  for (const Edge& e : edges) ++row_ptr[e.from + 1];
  for (std::size_t v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];
  {
    std::span<std::uint32_t> cursor = arena.alloc<std::uint32_t>(n);
    for (std::size_t v = 0; v < n; ++v) cursor[v] = row_ptr[v];
    for (const Edge& e : edges) {
      double w = e.weight + h[e.from] - h[e.to];
      // Clamp tiny negative float residue so Dijkstra's precondition holds.
      if (w < 0.0 && w > -1e-9) w = 0.0;
      const std::uint32_t at = cursor[e.from]++;
      head[at] = e.to;
      rw[at] = w;
    }
  }
  const CsrView view{row_ptr, head, rw};

  std::span<double> dist = arena.alloc<double>(n);
  std::vector<std::pair<double, NodeId>> heap;
  heap.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    dijkstra_csr(view, u, dist, heap);
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kInfDist) {
        out.at(u, v) = (u == v) ? 0.0 : kInfDist;
      } else {
        out.at(u, v) = dist[v] - h[u] + h[v];
      }
    }
  }
  return true;
}

std::optional<DistanceMatrix> johnson(const Digraph& g) {
  DistanceMatrix m;
  EpochArena arena;
  if (!johnson_into(g, m, arena)) return std::nullopt;
  return m;
}

}  // namespace cs
