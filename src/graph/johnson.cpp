#include "graph/johnson.hpp"

#include "graph/bellman_ford.hpp"
#include "graph/dijkstra.hpp"

namespace cs {

std::optional<DistanceMatrix> johnson(const Digraph& g) {
  const std::size_t n = g.node_count();

  // Augmented graph with a super-source connected to every node by a
  // zero-weight edge; its Bellman–Ford distances are valid potentials.
  Digraph aug(n + 1);
  for (const Edge& e : g.edges()) aug.add_edge(e.from, e.to, e.weight);
  const NodeId s = static_cast<NodeId>(n);
  for (NodeId v = 0; v < n; ++v) aug.add_edge(s, v, 0.0);

  const auto pot = bellman_ford(aug, s);
  if (!pot) return std::nullopt;  // negative cycle
  const std::vector<double>& h = pot->dist;

  // Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  Digraph rw(n);
  for (const Edge& e : g.edges()) {
    double w = e.weight + h[e.from] - h[e.to];
    // Clamp tiny negative float residue so Dijkstra's precondition holds.
    if (w < 0.0 && w > -1e-9) w = 0.0;
    rw.add_edge(e.from, e.to, w);
  }

  DistanceMatrix m(n);
  for (NodeId u = 0; u < n; ++u) {
    const ShortestPaths sp = dijkstra(rw, u);
    for (NodeId v = 0; v < n; ++v) {
      if (sp.dist[v] == kInfDist) {
        m.at(u, v) = (u == v) ? 0.0 : kInfDist;
      } else {
        m.at(u, v) = sp.dist[v] - h[u] + h[v];
      }
    }
  }
  return m;
}

}  // namespace cs
