// Simulator-internal events and the protocol message type.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "model/ids.hpp"

namespace cs {

/// Application payload carried by protocol messages.  A small tag plus a
/// vector of doubles covers every protocol in this library (probe ids,
/// correction values, serialized mls tables) without a serialization layer.
struct Payload {
  std::uint32_t tag{0};
  std::vector<double> data;

  bool operator==(const Payload&) const = default;
};

struct Message {
  MessageId id{0};
  ProcessorId from{0};
  ProcessorId to{0};
  Payload payload;
};

/// Scheduler event.  Start events kick off each processor at its (real)
/// start time; Delivery hands a message to the destination automaton; Timer
/// fires a timer previously set by the automaton.
struct SimEvent {
  enum class Kind : std::uint8_t { kStart, kDelivery, kTimer } kind{};
  ProcessorId processor{0};
  Message message;      ///< kDelivery only
  ClockTime timer_at{};  ///< kTimer only (destination clock time)
};

}  // namespace cs
