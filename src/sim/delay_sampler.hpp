// Delay samplers: the adversary/environment side of a link.
//
// A sampler draws the delay of each message on a link, per direction.  The
// simulator guarantees nothing about samplers — experiments must pair each
// link's sampler with its declared constraint so that generated executions
// are admissible; make_admissible_sampler() builds such a pairing for every
// constraint shipped with the library, and the simulator (optionally) and
// the tests verify admissibility after the fact via SystemModel::admissible.
//
// Every factory validates its parameters and throws cs::Error on
// configurations that could only emit constraint-violating delays (a clip
// ub below lb, an empty bias window, ...) — inadmissible executions must
// never pass silently.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "delaymodel/constraint.hpp"
#include "delaymodel/windowed_bias.hpp"

namespace cs {

class DelaySampler {
 public:
  virtual ~DelaySampler() = default;

  /// Delay for the next message in the given direction of the link
  /// (a_to_b refers to the link's canonical endpoints a < b).  `now` is
  /// the real send time — most samplers ignore it, but time-varying
  /// processes (drifting congestion, diurnal load) condition on it; the
  /// windowed-bias delay model exists precisely for such links.
  virtual double sample(bool a_to_b, RealTime now, Rng& rng) = 0;
};

/// Fixed delay per direction.
std::unique_ptr<DelaySampler> make_constant_sampler(double d_ab, double d_ba);

/// Uniform in [lo, hi] per direction.
std::unique_ptr<DelaySampler> make_uniform_sampler(double lo_ab, double hi_ab,
                                                   double lo_ba,
                                                   double hi_ba);

/// lb + Exp(1/mean_excess), optionally clipped at ub (WAN-ish tail).
std::unique_ptr<DelaySampler> make_shifted_exponential_sampler(
    double lb, double mean_excess,
    double ub = std::numeric_limits<double>::infinity());

/// lb + Pareto(xm, shape) - xm, optionally clipped at ub (heavy tail).
std::unique_ptr<DelaySampler> make_shifted_pareto_sampler(
    double lb, double xm, double shape,
    double ub = std::numeric_limits<double>::infinity());

/// Correlated bidirectional sampler guaranteeing every pair of opposite
/// delays differs by at most `bias`: delays are uniform within
/// [max(floor, center - bias/2), center + bias/2] for a fixed center.
std::unique_ptr<DelaySampler> make_bias_correlated_sampler(double center,
                                                           double bias,
                                                           double floor = 0.0);

/// Time-varying congestion: delays are uniform in a width-`jitter` band
/// around a center that oscillates sinusoidally,
///   center(t) = base + amplitude * sin(2*pi*t / period).
/// Messages sent within a window W satisfy a bias bound of roughly
///   jitter + amplitude * 2*pi*W / period   (slope bound),
/// so pair it with make_windowed_bias accordingly.  This is the honest
/// generator for the §6.2 windowed model: no fixed bias bound holds
/// globally, a windowed one does.
std::unique_ptr<DelaySampler> make_drifting_congestion_sampler(
    double base, double amplitude, double period, double jitter);

/// Failure injection: each message is lost with the given probability
/// (sampled delay +inf — the simulator records the send and never
/// delivers).  Lost messages carry no delay information, so they never
/// violate a delay assumption; they only starve the estimators, which is
/// precisely the failure mode to test (precision degrades, soundness must
/// not).
std::unique_ptr<DelaySampler> make_lossy_sampler(
    std::unique_ptr<DelaySampler> inner, double loss_probability);

/// Builds a sampler whose output is admissible under the given constraint,
/// dispatching on the concrete constraint type.  `scale` sets the typical
/// magnitude of delays where the constraint leaves freedom (e.g. above a
/// lower bound with no upper bound).  `rng` drives one-off parameter draws
/// (e.g. the bias sampler's center).
std::unique_ptr<DelaySampler> make_admissible_sampler(
    const LinkConstraint& constraint, double scale, Rng& rng);

}  // namespace cs
