// The discrete-event simulator: runs automata over a SystemModel and
// produces an admissible Execution (the paper's object of study) with full
// ground truth.
//
// Determinism: given identical model, factory, samplers and options, two
// runs produce identical executions.  Delay draws use one RNG stream per
// link (split from the master seed), so adding traffic on one link does not
// perturb delays on another — mirroring the locality assumption (§5.1) at
// the generator level.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "delaymodel/assignment.hpp"
#include "sim/automaton.hpp"
#include "sim/delay_sampler.hpp"
#include "sim/fault_plan.hpp"
#include "sim/tamper.hpp"

namespace cs {

class TraceSink;
class RateSchedule;

using AutomatonFactory =
    std::function<std::unique_ptr<Automaton>(ProcessorId)>;

struct SimOptions {
  /// S_p >= 0 for each processor; the unsynchronized start skew the
  /// algorithm is trying to estimate away.  Size must equal the processor
  /// count.
  std::vector<Duration> start_offsets;

  /// Master seed for delay sampling.
  std::uint64_t seed{1};

  /// Clock rates, one per processor; empty means all exactly 1.0 (the
  /// paper's drift-free model).  Non-unit rates are the drift extension
  /// (docs/DRIFT.md); they are incompatible with check_admissible (the
  /// model-side real-time reconstruction assumes rate 1), which must then
  /// be disabled.
  std::vector<double> clock_rates;

  /// Piecewise-constant rate schedules (the random-walk oscillator of
  /// docs/DRIFT.md), one per processor; empty means constant rates from
  /// clock_rates.  A null entry falls back to that processor's constant
  /// rate.  Any non-null schedule counts as drift and requires
  /// check_admissible to be disabled, same as non-unit clock_rates.
  std::vector<std::shared_ptr<const RateSchedule>> clock_schedules;

  /// Typical delay magnitude for auto-built samplers.
  double delay_scale{0.1};

  /// Hard cap on processed events (runaway-protocol guard).
  std::size_t max_events{1'000'000};

  /// Verify the produced execution against the model's constraints and
  /// throw InvalidExecution if violated (catches sampler/config mismatch).
  /// Automatically skipped when `faults` can duplicate or spike (such plans
  /// break the declared assumptions by design; see fault_plan.hpp).
  bool check_admissible{true};

  /// Optional fault schedule layered over the samplers and the event queue
  /// (drops, duplication, spikes, link outages, processor crashes).  Must
  /// outlive the simulate() call.  nullptr = fault-free.
  const FaultPlan* faults{nullptr};

  /// Optional stamp tamper (sim/tamper.hpp): every history stamp is routed
  /// through it, which is how Byzantine lying agents (src/byz) corrupt the
  /// recorded timeline without touching the physical execution.  Must
  /// outlive the simulate() call.  A dishonest tamper disables the
  /// post-hoc admissibility check (the recorded execution lies by design).
  /// nullptr = every processor honest.
  StampTamper* tamper{nullptr};

  /// Optional instrumentation sink for the "fault.*" counters and any
  /// future sim-side series.  nullptr = off.
  Metrics* metrics{nullptr};

  /// Optional execution-trace sink (sim/trace_sink.hpp): receives every
  /// event of the run — sends, deliveries, fault decisions with cause,
  /// timers — in dispatch order with ground-truth real times.  Feed a
  /// cs::TraceWriter (src/trace) here to capture a replayable trace.
  /// nullptr = off.  Must outlive the simulate() call.
  TraceSink* trace{nullptr};
};

struct SimResult {
  Execution execution;
  std::size_t delivered_messages{0};
  std::size_t lost_messages{0};
  std::size_t fired_timers{0};

  /// Fault-injection tallies (all zero without a FaultPlan).  The split by
  /// cause lives in the "fault.*" counters of SimOptions::metrics.
  std::size_t fault_dropped_messages{0};   ///< drops + link-down outages
  std::size_t duplicated_messages{0};      ///< extra deliveries scheduled
  std::size_t crash_dropped_deliveries{0}; ///< arrivals at a crashed node
  std::size_t suppressed_timers{0};        ///< timer fires at a crashed node
};

/// Simulate with auto-built admissible samplers (one per link, derived from
/// the link's constraint; see make_admissible_sampler).
SimResult simulate(const SystemModel& model, const AutomatonFactory& factory,
                   const SimOptions& options);

/// Simulate with explicit samplers, one per topology link, in
/// topology().links order.
SimResult simulate(const SystemModel& model, const AutomatonFactory& factory,
                   std::vector<std::unique_ptr<DelaySampler>> samplers,
                   const SimOptions& options);

/// Uniform random start offsets in [0, max_skew].
std::vector<Duration> random_start_offsets(std::size_t n, double max_skew,
                                           Rng& rng);

}  // namespace cs
