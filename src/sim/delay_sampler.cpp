#include "sim/delay_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cs {
namespace {

class ConstantSampler final : public DelaySampler {
 public:
  ConstantSampler(double ab, double ba) : ab_(ab), ba_(ba) {}
  double sample(bool a_to_b, RealTime, Rng&) override {
    return a_to_b ? ab_ : ba_;
  }

 private:
  double ab_, ba_;
};

class UniformSampler final : public DelaySampler {
 public:
  UniformSampler(double lo_ab, double hi_ab, double lo_ba, double hi_ba)
      : lo_ab_(lo_ab), hi_ab_(hi_ab), lo_ba_(lo_ba), hi_ba_(hi_ba) {
    if (!(lo_ab <= hi_ab) || !(lo_ba <= hi_ba))
      throw Error("uniform sampler: interval is inverted (lo > hi)");
  }
  double sample(bool a_to_b, RealTime, Rng& rng) override {
    return a_to_b ? rng.uniform(lo_ab_, hi_ab_)
                  : rng.uniform(lo_ba_, hi_ba_);
  }

 private:
  double lo_ab_, hi_ab_, lo_ba_, hi_ba_;
};

class ShiftedExponentialSampler final : public DelaySampler {
 public:
  ShiftedExponentialSampler(double lb, double mean_excess, double ub)
      : lb_(lb), rate_(1.0 / mean_excess), ub_(ub) {
    // ub < lb would make the min-clip emit delays *below* the declared
    // lower bound — an inadmissible execution passing silently.
    if (!(mean_excess > 0.0))
      throw Error("shifted exponential sampler: mean_excess must be > 0");
    if (!(ub >= lb))
      throw Error("shifted exponential sampler: clip ub < lb would "
                  "violate the lower bound");
  }
  double sample(bool, RealTime, Rng& rng) override {
    return std::min(ub_, lb_ + rng.exponential(rate_));
  }

 private:
  double lb_, rate_, ub_;
};

class ShiftedParetoSampler final : public DelaySampler {
 public:
  ShiftedParetoSampler(double lb, double xm, double shape, double ub)
      : lb_(lb), xm_(xm), shape_(shape), ub_(ub) {
    if (!(xm > 0.0) || !(shape > 0.0))
      throw Error("shifted Pareto sampler: xm and shape must be > 0");
    if (!(ub >= lb))
      throw Error("shifted Pareto sampler: clip ub < lb would violate "
                  "the lower bound");
  }
  double sample(bool, RealTime, Rng& rng) override {
    return std::min(ub_, lb_ + (rng.pareto(xm_, shape_) - xm_));
  }

 private:
  double lb_, xm_, shape_, ub_;
};

class BiasCorrelatedSampler final : public DelaySampler {
 public:
  BiasCorrelatedSampler(double center, double bias, double floor)
      : lo_(std::max(floor, center - bias / 2.0)),
        hi_(center + bias / 2.0) {
    // An empty window (floor clipped past the upper edge, or negative
    // bias) would make rng.uniform(lo, hi) emit delays *below* the floor
    // — violating the declared constraint silently in release builds.
    if (!(bias >= 0.0))
      throw Error("bias-correlated sampler: bias must be non-negative");
    if (!(lo_ <= hi_))
      throw Error("bias-correlated sampler: floor > center + bias/2 "
                  "leaves an empty sampling window");
  }
  double sample(bool, RealTime, Rng& rng) override { return rng.uniform(lo_, hi_); }

 private:
  double lo_, hi_;
};

/// Per-direction interval sampler constrained to a shared window (for
/// composite bounds-and-bias constraints).
class WindowedSampler final : public DelaySampler {
 public:
  WindowedSampler(double lo_ab, double hi_ab, double lo_ba, double hi_ba)
      : inner_(lo_ab, hi_ab, lo_ba, hi_ba) {}
  double sample(bool a_to_b, RealTime now, Rng& rng) override {
    return inner_.sample(a_to_b, now, rng);
  }

 private:
  UniformSampler inner_;
};

/// Flattened summary of a (possibly composite) constraint: intersected
/// per-direction bounds plus the tightest bias bound.
struct FlatConstraint {
  Interval ab;
  Interval ba;
  double bias = std::numeric_limits<double>::infinity();
};

void flatten(const LinkConstraint& c, FlatConstraint& out) {
  if (const auto* bounds = dynamic_cast<const BoundsConstraint*>(&c)) {
    out.ab = out.ab.intersect(bounds->bounds(bounds->a()));
    out.ba = out.ba.intersect(bounds->bounds(bounds->b()));
    return;
  }
  if (const auto* bias = dynamic_cast<const BiasConstraint*>(&c)) {
    out.bias = std::min(out.bias, bias->bias());
    return;
  }
  if (const auto* wbias = dynamic_cast<const WindowedBiasConstraint*>(&c)) {
    // Keeping *all* delays within a width-b window satisfies the windowed
    // constraint a fortiori (pairs outside the window are unconstrained).
    out.bias = std::min(out.bias, wbias->bias());
    return;
  }
  if (const auto* comp = dynamic_cast<const CompositeConstraint*>(&c)) {
    for (std::size_t i = 0; i < comp->part_count(); ++i)
      flatten(comp->part(i), out);
    return;
  }
  throw InvalidAssumption(
      "make_admissible_sampler: unknown constraint type " + c.describe());
}

}  // namespace

std::unique_ptr<DelaySampler> make_constant_sampler(double d_ab,
                                                    double d_ba) {
  return std::make_unique<ConstantSampler>(d_ab, d_ba);
}

std::unique_ptr<DelaySampler> make_uniform_sampler(double lo_ab, double hi_ab,
                                                   double lo_ba,
                                                   double hi_ba) {
  return std::make_unique<UniformSampler>(lo_ab, hi_ab, lo_ba, hi_ba);
}

std::unique_ptr<DelaySampler> make_shifted_exponential_sampler(
    double lb, double mean_excess, double ub) {
  return std::make_unique<ShiftedExponentialSampler>(lb, mean_excess, ub);
}

std::unique_ptr<DelaySampler> make_shifted_pareto_sampler(double lb,
                                                          double xm,
                                                          double shape,
                                                          double ub) {
  return std::make_unique<ShiftedParetoSampler>(lb, xm, shape, ub);
}

std::unique_ptr<DelaySampler> make_bias_correlated_sampler(double center,
                                                           double bias,
                                                           double floor) {
  return std::make_unique<BiasCorrelatedSampler>(center, bias, floor);
}

namespace {

class DriftingCongestionSampler final : public DelaySampler {
 public:
  DriftingCongestionSampler(double base, double amplitude, double period,
                            double jitter)
      : base_(base), amplitude_(amplitude), period_(period),
        jitter_(jitter) {
    if (!(period > 0.0) || !(jitter >= 0.0) || !(amplitude >= 0.0))
      throw Error("drifting congestion sampler: need period > 0, "
                  "jitter >= 0, amplitude >= 0");
    if (!(base - amplitude - jitter / 2.0 >= 0.0))
      throw Error("drifting congestion sampler: delays would go negative "
                  "at the trough (base - amplitude - jitter/2 < 0)");
  }
  double sample(bool, RealTime now, Rng& rng) override {
    const double center =
        base_ + amplitude_ * std::sin(2.0 * std::numbers::pi * now.sec /
                                      period_);
    return center + rng.uniform(-jitter_ / 2.0, jitter_ / 2.0);
  }

 private:
  double base_, amplitude_, period_, jitter_;
};

class LossySampler final : public DelaySampler {
 public:
  LossySampler(std::unique_ptr<DelaySampler> inner, double loss)
      : inner_(std::move(inner)), loss_(loss) {
    if (!(loss >= 0.0 && loss <= 1.0))
      throw Error("lossy sampler: loss probability must be in [0, 1]");
  }
  double sample(bool a_to_b, RealTime now, Rng& rng) override {
    // Draw the inner delay first so the delay stream stays aligned across
    // runs with different loss rates.
    const double d = inner_->sample(a_to_b, now, rng);
    if (rng.uniform01() < loss_)
      return std::numeric_limits<double>::infinity();
    return d;
  }

 private:
  std::unique_ptr<DelaySampler> inner_;
  double loss_;
};

}  // namespace

std::unique_ptr<DelaySampler> make_drifting_congestion_sampler(
    double base, double amplitude, double period, double jitter) {
  return std::make_unique<DriftingCongestionSampler>(base, amplitude,
                                                     period, jitter);
}

std::unique_ptr<DelaySampler> make_lossy_sampler(
    std::unique_ptr<DelaySampler> inner, double loss_probability) {
  return std::make_unique<LossySampler>(std::move(inner), loss_probability);
}

std::unique_ptr<DelaySampler> make_admissible_sampler(
    const LinkConstraint& constraint, double scale, Rng& rng) {
  FlatConstraint flat;
  flatten(constraint, flat);

  const bool has_bias = std::isfinite(flat.bias);

  if (!has_bias) {
    // Pure bounds: sample each direction independently within its interval,
    // exponential tail when the upper bound is infinite.
    auto one = [&](const Interval& iv) -> std::pair<double, double> {
      const double lb = iv.lo().finite();
      const double hi = iv.hi().is_finite()
                            ? iv.hi().finite()
                            : std::numeric_limits<double>::infinity();
      return {lb, hi};
    };
    const auto [lb_ab, ub_ab] = one(flat.ab);
    const auto [lb_ba, ub_ba] = one(flat.ba);
    if (std::isfinite(ub_ab) && std::isfinite(ub_ba))
      return make_uniform_sampler(lb_ab, ub_ab, lb_ba, ub_ba);
    // Mixed finite/infinite uppers: exponential tail clipped per direction.
    struct Mixed final : DelaySampler {
      double lb_ab, ub_ab, lb_ba, ub_ba, mean;
      double sample(bool a_to_b, RealTime, Rng& r) override {
        const double lb = a_to_b ? lb_ab : lb_ba;
        const double ub = a_to_b ? ub_ab : ub_ba;
        return std::min(ub, lb + r.exponential(1.0 / mean));
      }
    };
    auto s = std::make_unique<Mixed>();
    s->lb_ab = lb_ab;
    s->ub_ab = ub_ab;
    s->lb_ba = lb_ba;
    s->ub_ba = ub_ba;
    s->mean = scale;
    return s;
  }

  // Bias present: pick a center c so that the bias window [c-b/2, c+b/2]
  // meets both directions' bounds, then sample each direction uniformly in
  // the intersection.  Every emitted delay lies in the window, so all
  // opposite-direction differences are <= b.
  const double b = flat.bias;
  const double lo_c =
      std::max(flat.ab.lo().finite(), flat.ba.lo().finite()) - b / 2.0;
  const double hi_c =
      std::min(flat.ab.hi().is_finite()
                   ? flat.ab.hi().finite()
                   : std::numeric_limits<double>::infinity(),
               flat.ba.hi().is_finite()
                   ? flat.ba.hi().finite()
                   : std::numeric_limits<double>::infinity()) +
      b / 2.0;
  if (lo_c > hi_c)
    throw InvalidAssumption(
        "bias and bounds constraints jointly unsatisfiable on this link");
  double center = std::isfinite(hi_c)
                      ? rng.uniform(std::max(lo_c, 0.0),
                                    std::max(lo_c, std::min(hi_c, lo_c + 2.0 * scale)))
                      : std::max(lo_c, 0.0) + rng.uniform(0.0, 2.0 * scale);
  center = std::clamp(center, std::max(lo_c, 0.0),
                      std::isfinite(hi_c) ? hi_c : center);

  auto clip = [&](const Interval& iv) -> std::pair<double, double> {
    const double lo = std::max(iv.lo().finite(), center - b / 2.0);
    const double hi =
        std::min(iv.hi().is_finite() ? iv.hi().finite()
                                     : std::numeric_limits<double>::infinity(),
                 center + b / 2.0);
    if (lo > hi)
      throw InvalidAssumption(
          "internal: empty bias window after center choice");
    return {lo, hi};
  };
  const auto [lo_ab, hi_ab] = clip(flat.ab);
  const auto [lo_ba, hi_ba] = clip(flat.ba);
  return std::make_unique<WindowedSampler>(lo_ab, hi_ab, lo_ba, hi_ba);
}

}  // namespace cs
