#include "sim/fault_plan.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace cs {
namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw Error(std::string("FaultPlan: ") + what +
                " must be a probability in [0, 1]");
}

void check_link(const LinkFaults& f) {
  check_probability(f.drop_probability, "drop_probability");
  check_probability(f.duplicate_probability, "duplicate_probability");
  check_probability(f.spike_probability, "spike_probability");
  if (!(f.duplicate_lag >= 0.0))
    throw Error("FaultPlan: duplicate_lag must be non-negative");
  if (!(f.spike_magnitude >= 0.0))
    throw Error("FaultPlan: spike_magnitude must be non-negative");
  if (f.spike_probability > 0.0 && f.spike_magnitude == 0.0)
    throw Error("FaultPlan: spike_probability > 0 needs spike_magnitude > 0");
  for (const TimeWindow& w : f.down)
    if (!(w.from.sec <= w.until.sec))
      throw Error("FaultPlan: link down window is inverted (from > until)");
}

}  // namespace

LinkFaults& FaultPlan::link(ProcessorId a, ProcessorId b) {
  const auto [it, inserted] = overrides_.try_emplace(key(a, b), default_link);
  (void)inserted;
  return it->second;
}

const LinkFaults& FaultPlan::link_faults(ProcessorId a, ProcessorId b) const {
  const auto it = overrides_.find(key(a, b));
  return it == overrides_.end() ? default_link : it->second;
}

void FaultPlan::crash(ProcessorId pid, RealTime from, RealTime until) {
  crashes_.push_back(CrashWindow{pid, TimeWindow{from, until}});
}

bool FaultPlan::crashed_at(ProcessorId pid, RealTime t) const {
  for (const CrashWindow& c : crashes_)
    if (c.pid == pid && c.window.contains(t)) return true;
  return false;
}

bool FaultPlan::admissibility_preserving() const {
  if (!default_link.admissibility_preserving()) return false;
  for (const auto& [k, f] : overrides_) {
    (void)k;
    if (!f.admissibility_preserving()) return false;
  }
  return true;
}

void FaultPlan::validate() const {
  check_link(default_link);
  for (const auto& [k, f] : overrides_) {
    (void)k;
    check_link(f);
  }
  for (const CrashWindow& c : crashes_)
    if (!(c.window.from.sec <= c.window.until.sec))
      throw Error("FaultPlan: crash window is inverted (from > until)");
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t link_count,
                             Metrics* metrics)
    : plan_(&plan), metrics_(metrics) {
  plan.validate();
  const Rng master(plan.seed);
  link_rngs_.reserve(link_count);
  for (std::size_t i = 0; i < link_count; ++i)
    link_rngs_.push_back(master.split(i));
}

FaultDecision FaultInjector::on_send(std::size_t link, ProcessorId a,
                                     ProcessorId b, RealTime now) {
  const LinkFaults& f = plan_->link_faults(a, b);
  Rng& rng = link_rngs_[link];
  // Always five draws, in a fixed order, so toggling one fault kind leaves
  // the other kinds' streams untouched.
  const double u_drop = rng.uniform01();
  const double u_dup = rng.uniform01();
  const double u_spike = rng.uniform01();
  const double u_spike_mag = rng.uniform01();
  const double u_lag = rng.uniform01();

  FaultDecision d;
  if (f.down_at(now)) {
    d.drop = true;
    d.cause = DropCause::kLinkDown;
    metrics_increment(metrics_, "fault.link_down_drops");
    return d;
  }
  if (u_drop < f.drop_probability) {
    d.drop = true;
    d.cause = DropCause::kRandom;
    metrics_increment(metrics_, "fault.dropped");
    return d;
  }
  if (u_spike < f.spike_probability) {
    // Half-open draw flipped to (0, magnitude]: a spike always inflates.
    d.extra_delay = f.spike_magnitude * (1.0 - u_spike_mag);
    metrics_increment(metrics_, "fault.delay_spikes");
  }
  if (u_dup < f.duplicate_probability) {
    d.duplicate = true;
    d.duplicate_lag = f.duplicate_lag * u_lag;
    metrics_increment(metrics_, "fault.duplicated");
  }
  return d;
}

}  // namespace cs
