#include "sim/event_queue.hpp"

#include <utility>

#include "common/error.hpp"

namespace cs {

void EventQueue::push(RealTime at, SimEvent ev) {
  heap_.push(Entry{at, next_seq_++, std::move(ev)});
}

RealTime EventQueue::next_time() const {
  if (heap_.empty()) throw Error("EventQueue::next_time on an empty queue");
  return heap_.top().at;
}

SimEvent EventQueue::pop() {
  if (heap_.empty()) throw Error("EventQueue::pop on an empty queue");
  SimEvent ev = heap_.top().ev;
  heap_.pop();
  return ev;
}

}  // namespace cs
