#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace cs {

void EventQueue::push(RealTime at, SimEvent ev) {
  heap_.push(Entry{at, next_seq_++, std::move(ev)});
}

SimEvent EventQueue::pop() {
  assert(!heap_.empty());
  SimEvent ev = heap_.top().ev;
  heap_.pop();
  return ev;
}

}  // namespace cs
