// Processor automata, the paper's model of computation (§2.1).
//
// A processor is an automaton whose transition function consumes interrupt
// events (start, message receipt, timer) together with the current *clock*
// time, and emits message-send and timer-set actions.  Context is the
// capability handed to the transition: it exposes exactly what the model
// allows a processor to observe (its clock, its id, its neighbors) and the
// two actions.  There is deliberately no way to read real time through it.
#pragma once

#include <span>

#include "common/time.hpp"
#include "sim/event.hpp"

namespace cs {

class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessorId self() const = 0;
  virtual ClockTime now() const = 0;
  virtual std::span<const ProcessorId> neighbors() const = 0;

  /// Send a message to an adjacent processor (checked by the simulator).
  virtual void send(ProcessorId to, Payload payload) = 0;

  /// Arm a timer for a future clock time (must be >= now()).
  virtual void set_timer(ClockTime at) = 0;
};

class Automaton {
 public:
  virtual ~Automaton() = default;

  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(Context& ctx, const Message& msg) = 0;
  virtual void on_timer(Context& ctx, ClockTime at) = 0;
};

}  // namespace cs
