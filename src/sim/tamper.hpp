// Stamp tampering: the seam through which Byzantine behavior enters the
// simulator.
//
// The paper's processors are honest: every view event carries the clock
// time at which it really happened.  A Byzantine processor instead
// *reports* whatever serves it — its history (and hence its view, and
// hence everything the estimators see) carries corrupted stamps while the
// underlying execution is unchanged.  StampTamper is exactly that
// distinction made mechanical: the simulator computes the true clock stamp
// of every history event and routes it through the tamper, which returns
// the stamp to record.  Honest processors pass stamps through untouched.
//
// Contract:
//   * The returned stamp must be nondecreasing per processor (History
//     enforces monotone clock order); implementations clamp.
//   * Tampering must not change *behavior* — timers still fire at their
//     true clock times, messages still leave when they leave.  Only the
//     recorded timeline lies.  (A liar that also delayed its sends would
//     just be a slow honest node; the interesting adversary is the one
//     whose lies are invisible in the physical execution.)
//   * honest() == true promises stamps are always returned unchanged, so
//     the simulator keeps its post-hoc admissibility check.  A lying
//     tamper makes the recorded execution inadmissible by design (the
//     recorded d̃ no longer obeys the declared bounds), so the check is
//     skipped, mirroring FaultPlan::admissibility_preserving.
//
// The concrete Byzantine implementation (behavior models on split RNG
// streams) lives in src/byz/injector.hpp; sim depends only on this
// interface.
#pragma once

#include "common/time.hpp"
#include "model/ids.hpp"
#include "model/step.hpp"

namespace cs {

class StampTamper {
 public:
  virtual ~StampTamper() = default;

  /// The clock stamp to record in `pid`'s history for an event of `kind`
  /// whose true local clock time is `truth`.  `peer` is the counterparty:
  /// kSend — destination, kReceive — source, timer events — `pid` itself.
  virtual ClockTime stamp(ProcessorId pid, EventKind kind, ClockTime truth,
                          ProcessorId peer) = 0;

  /// True iff this tamper provably never alters a stamp.
  virtual bool honest() const = 0;
};

}  // namespace cs
