#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace_sink.hpp"

namespace cs {
namespace {

class SimulatorImpl {
 public:
  SimulatorImpl(const SystemModel& model, const AutomatonFactory& factory,
                std::vector<std::unique_ptr<DelaySampler>> samplers,
                const SimOptions& options)
      : model_(model), samplers_(std::move(samplers)), options_(options),
        trace_(options.trace) {
    const std::size_t n = model.processor_count();
    if (options.start_offsets.size() != n)
      throw Error("start_offsets size must equal processor count");
    if (samplers_.size() != model.topology().link_count())
      throw Error("need exactly one sampler per topology link");

    const Rng master(options.seed);
    link_rngs_.reserve(samplers_.size());
    for (std::size_t i = 0; i < samplers_.size(); ++i) {
      link_rngs_.push_back(master.split(i));
      const auto [a, b] = model.topology().links[i];
      link_index_[pair_key(a, b)] = i;
    }

    if (!options.clock_rates.empty()) {
      if (options.clock_rates.size() != n)
        throw Error("clock_rates must be empty or one per processor");
      for (double r : options.clock_rates) validated_clock_rate(r);
    }
    if (!options.clock_schedules.empty() &&
        options.clock_schedules.size() != n)
      throw Error("clock_schedules must be empty or one per processor");
    const bool any_drift =
        std::any_of(options.clock_rates.begin(), options.clock_rates.end(),
                    [](double r) { return r != 1.0; }) ||
        std::any_of(options.clock_schedules.begin(),
                    options.clock_schedules.end(),
                    [](const auto& s) { return s != nullptr; });
    if (any_drift && options.check_admissible)
      throw Error(
          "drifting clocks are outside the paper's model: disable "
          "check_admissible to simulate them (docs/DRIFT.md)");

    if (options.faults != nullptr) {
      injector_.emplace(*options.faults, model.topology().link_count(),
                        options.metrics);
      for (const CrashWindow& c : options.faults->crashes()) {
        if (c.pid >= n)
          throw Error("FaultPlan: crash window names a non-existent processor");
        const RealTime start = RealTime{} + options.start_offsets[c.pid];
        if (c.window.contains(start))
          throw Error(
              "FaultPlan: crash window covers the processor's start time; "
              "begin the crash after the processor starts");
      }
    }

    const auto adjacency = model.topology().adjacency();
    procs_.reserve(n);
    for (ProcessorId p = 0; p < n; ++p) {
      const Duration offset = options.start_offsets[p];
      if (offset < Duration{0.0})
        throw Error("start offsets must be non-negative");
      const double rate =
          options.clock_rates.empty() ? 1.0 : options.clock_rates[p];
      const std::shared_ptr<const RateSchedule> schedule =
          options.clock_schedules.empty() ? nullptr
                                          : options.clock_schedules[p];
      Proc proc;
      proc.automaton = factory(p);
      proc.clock = schedule != nullptr
                       ? Clock(RealTime{} + offset, schedule)
                       : Clock(RealTime{} + offset, rate);
      proc.history = History(p, proc.clock.start());
      proc.neighbors = adjacency[p];
      std::sort(proc.neighbors.begin(), proc.neighbors.end());
      procs_.push_back(std::move(proc));
    }
  }

  SimResult run() {
    if (trace_ != nullptr) trace_->begin_run(model_, options_);
    for (ProcessorId p = 0; p < procs_.size(); ++p) {
      SimEvent ev;
      ev.kind = SimEvent::Kind::kStart;
      ev.processor = p;
      queue_.push(procs_[p].clock.start(), ev);
    }

    std::size_t processed = 0;
    while (!queue_.empty()) {
      if (++processed > options_.max_events)
        throw Error("simulation exceeded max_events (runaway protocol?)");
      now_ = queue_.next_time();
      const SimEvent ev = queue_.pop();
      dispatch(ev);
    }

    std::vector<History> histories;
    histories.reserve(procs_.size());
    for (Proc& p : procs_) histories.push_back(std::move(p.history));

    SimResult result;
    result.execution = Execution(std::move(histories));
    result.delivered_messages = delivered_;
    result.lost_messages = lost_;
    result.fired_timers = fired_timers_;
    result.fault_dropped_messages = fault_dropped_;
    result.duplicated_messages = duplicated_;
    result.crash_dropped_deliveries = crash_dropped_;
    result.suppressed_timers = suppressed_timers_;

    // Duplicating or spiking plans violate the declared assumptions by
    // design; checking the trace against them would (rightly) throw, so the
    // check is meaningful only for omission-only fault plans.
    const bool checkable =
        (options_.faults == nullptr ||
         options_.faults->admissibility_preserving()) &&
        (options_.tamper == nullptr || options_.tamper->honest());
    if (options_.check_admissible && checkable &&
        !model_.admissible(result.execution))
      throw InvalidExecution(
          "simulated execution violates the declared delay assumptions; "
          "sampler and constraint configuration disagree");
    if (trace_ != nullptr) trace_->end_run(result);
    return result;
  }

 private:
  struct Proc {
    std::unique_ptr<Automaton> automaton;
    Clock clock;
    History history;
    std::vector<ProcessorId> neighbors;
    bool started{false};
  };

  /// Context implementation handed to automaton callbacks; bound to the
  /// current event's processor and time.
  class Ctx final : public Context {
   public:
    Ctx(SimulatorImpl& sim, ProcessorId pid) : sim_(sim), pid_(pid) {}

    ProcessorId self() const override { return pid_; }
    ClockTime now() const override {
      return sim_.procs_[pid_].clock.at(sim_.now_);
    }
    std::span<const ProcessorId> neighbors() const override {
      return sim_.procs_[pid_].neighbors;
    }
    void send(ProcessorId to, Payload payload) override {
      sim_.do_send(pid_, to, std::move(payload));
    }
    void set_timer(ClockTime at) override { sim_.do_set_timer(pid_, at); }

   private:
    SimulatorImpl& sim_;
    ProcessorId pid_;
  };

  static std::uint64_t pair_key(ProcessorId a, ProcessorId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  /// The stamp a history event records: the true clock time, or whatever
  /// the tamper (a Byzantine behavior model) reports instead.
  ClockTime stamped(ProcessorId pid, EventKind kind, ClockTime truth,
                    ProcessorId peer) {
    return options_.tamper == nullptr
               ? truth
               : options_.tamper->stamp(pid, kind, truth, peer);
  }

  void dispatch(const SimEvent& ev) {
    Proc& proc = procs_[ev.processor];
    Ctx ctx(*this, ev.processor);
    switch (ev.kind) {
      case SimEvent::Kind::kStart: {
        proc.started = true;
        // History's constructor already recorded the start event.
        proc.automaton->on_start(ctx);
        break;
      }
      case SimEvent::Kind::kDelivery: {
        if (!proc.started)
          throw Error("internal: delivery before start was not deferred");
        if (injector_ && injector_->crashed(ev.processor, now_)) {
          ++crash_dropped_;
          metrics_increment(options_.metrics, "fault.crash_dropped_deliveries");
          if (trace_ != nullptr)
            trace_->record_crash_drop(now_, ev.processor, ev.message.from,
                                      ev.message.id);
          break;  // the processor is dead: no view event, no callback
        }
        ViewEvent ve;
        ve.kind = EventKind::kReceive;
        ve.when = stamped(ev.processor, EventKind::kReceive,
                          proc.clock.at(now_), ev.message.from);
        ve.msg = ev.message.id;
        ve.peer = ev.message.from;
        proc.history.append(ve);
        ++delivered_;
        if (trace_ != nullptr)
          trace_->record_delivery(now_, ev.processor, ev.message.from,
                                  ev.message.id, ve.when);
        proc.automaton->on_message(ctx, ev.message);
        break;
      }
      case SimEvent::Kind::kTimer: {
        if (injector_ && injector_->crashed(ev.processor, now_)) {
          ++suppressed_timers_;
          metrics_increment(options_.metrics, "fault.suppressed_timers");
          if (trace_ != nullptr)
            trace_->record_timer_suppressed(now_, ev.processor, ev.timer_at);
          break;  // lost wakeup: crashed nodes miss their timers
        }
        ViewEvent ve;
        ve.kind = EventKind::kTimerFire;
        ve.when = stamped(ev.processor, EventKind::kTimerFire,
                          proc.clock.at(now_), ev.processor);
        ve.timer_at = ev.timer_at;
        proc.history.append(ve);
        ++fired_timers_;
        if (trace_ != nullptr)
          trace_->record_timer_fire(now_, ev.processor, ve.when, ev.timer_at);
        proc.automaton->on_timer(ctx, ev.timer_at);
        break;
      }
    }
  }

  void do_send(ProcessorId from, ProcessorId to, Payload payload) {
    Proc& sender = procs_[from];
    const auto it = link_index_.find(pair_key(from, to));
    if (it == link_index_.end())
      throw Error("automaton sent to a non-adjacent processor");

    Message msg;
    msg.id = next_msg_id_++;
    msg.from = from;
    msg.to = to;
    msg.payload = std::move(payload);

    ViewEvent ve;
    ve.kind = EventKind::kSend;
    ve.when = stamped(from, EventKind::kSend, sender.clock.at(now_), to);
    ve.msg = msg.id;
    ve.peer = to;
    sender.history.append(ve);
    if (trace_ != nullptr)
      trace_->record_send(now_, from, to, msg.id, ve.when);

    const std::size_t link = it->second;
    const bool a_to_b = from < to;
    double delay = samplers_[link]->sample(a_to_b, now_, link_rngs_[link]);
    if (delay < 0.0) throw Error("sampler produced a negative delay");
    if (!std::isfinite(delay)) {
      ++lost_;  // message lost in transit: sent, never delivered
      if (trace_ != nullptr)
        trace_->record_loss(now_, from, to, msg.id, LossCause::kSampler);
      return;
    }

    // Layer the fault plan over the sampled delay.  The base delay above is
    // always drawn first, so the per-link delay streams stay aligned with
    // the fault-free run.
    FaultDecision fault;
    if (injector_)
      fault = injector_->on_send(link, std::min(from, to),
                                 std::max(from, to), now_);
    if (fault.drop) {
      ++fault_dropped_;
      if (trace_ != nullptr)
        trace_->record_loss(now_, from, to, msg.id,
                            fault.cause == DropCause::kLinkDown
                                ? LossCause::kLinkDown
                                : LossCause::kFaultDrop);
      return;  // sent, never delivered (same observable shape as loss)
    }
    if (fault.extra_delay > 0.0 && trace_ != nullptr)
      trace_->record_spike(now_, from, to, msg.id, fault.extra_delay);
    delay += fault.extra_delay;

    // A message cannot be consumed before its receiver starts executing; if
    // it arrives earlier it waits (the wait is part of the actual delay, as
    // an outside observer would measure it).
    const RealTime arrival =
        std::max(now_ + Duration{delay}, procs_[to].clock.start());

    SimEvent ev;
    ev.kind = SimEvent::Kind::kDelivery;
    ev.processor = to;
    ev.message = msg;
    queue_.push(arrival, ev);

    if (fault.duplicate) {
      // Second delivery of the *same* message id, a little later — the
      // pairing layer's duplicate hazard made real.
      ++duplicated_;
      if (trace_ != nullptr)
        trace_->record_duplicate(now_, from, to, msg.id, fault.duplicate_lag);
      SimEvent dup;
      dup.kind = SimEvent::Kind::kDelivery;
      dup.processor = to;
      dup.message = std::move(msg);
      queue_.push(arrival + Duration{fault.duplicate_lag}, dup);
    }
  }

  void do_set_timer(ProcessorId pid, ClockTime at) {
    Proc& proc = procs_[pid];
    const ClockTime now_clock = proc.clock.at(now_);
    if (at < now_clock) throw Error("timer set for the past");

    ViewEvent ve;
    ve.kind = EventKind::kTimerSet;
    ve.when = stamped(pid, EventKind::kTimerSet, now_clock, pid);
    ve.timer_at = at;
    proc.history.append(ve);
    if (trace_ != nullptr)
      trace_->record_timer_set(now_, pid, now_clock, at);

    SimEvent ev;
    ev.kind = SimEvent::Kind::kTimer;
    ev.processor = pid;
    ev.timer_at = at;
    queue_.push(proc.clock.real(at), ev);
  }

  const SystemModel& model_;
  std::vector<std::unique_ptr<DelaySampler>> samplers_;
  SimOptions options_;
  TraceSink* trace_;

  std::vector<Proc> procs_;
  std::vector<Rng> link_rngs_;
  std::unordered_map<std::uint64_t, std::size_t> link_index_;
  std::optional<FaultInjector> injector_;
  EventQueue queue_;
  RealTime now_{};
  MessageId next_msg_id_{1};
  std::size_t delivered_{0};
  std::size_t lost_{0};
  std::size_t fired_timers_{0};
  std::size_t fault_dropped_{0};
  std::size_t duplicated_{0};
  std::size_t crash_dropped_{0};
  std::size_t suppressed_timers_{0};
};

}  // namespace

SimResult simulate(const SystemModel& model, const AutomatonFactory& factory,
                   std::vector<std::unique_ptr<DelaySampler>> samplers,
                   const SimOptions& options) {
  SimulatorImpl sim(model, factory, std::move(samplers), options);
  return sim.run();
}

SimResult simulate(const SystemModel& model, const AutomatonFactory& factory,
                   const SimOptions& options) {
  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<std::unique_ptr<DelaySampler>> samplers;
  samplers.reserve(model.topology().link_count());
  for (auto [a, b] : model.topology().links)
    samplers.push_back(make_admissible_sampler(model.constraint(a, b),
                                               options.delay_scale, rng));
  return simulate(model, factory, std::move(samplers), options);
}

std::vector<Duration> random_start_offsets(std::size_t n, double max_skew,
                                           Rng& rng) {
  std::vector<Duration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Duration{rng.uniform(0.0, max_skew)});
  return out;
}

}  // namespace cs
