// Fault injection: the failure side of a link and of a processor.
//
// A FaultPlan layers message-level and processor-level faults over the
// delay samplers and the event queue: per-link message drops, duplication,
// delay spikes and link up/down windows, plus processor crash/restart
// windows.  All fault randomness is drawn from dedicated per-link streams
// split from the plan's own seed, so (a) a run is bit-for-bit deterministic
// given (sim seed, fault seed), and (b) the *delay* streams stay aligned
// with the fault-free run — the same message gets the same base delay
// whether or not it is later dropped, duplicated or spiked.
//
// Fault taxonomy and what it preserves:
//   * drops / link-down windows / crashes are omission faults: the message
//     (or wakeup) simply never happens.  Views lose information but never
//     gain wrong information, so the produced execution remains admissible
//     under the declared delay assumptions.
//   * duplication re-delivers a message id a second time; the execution is
//     physically fine but the *strict* pairing layer rightly rejects id
//     reuse — degraded pipelines must pair under MatchPolicy::kDropOrphans
//     (which keeps the earliest copy).
//   * delay spikes deliberately violate the declared delay bounds — they
//     model the assumption itself breaking.  The simulator therefore skips
//     its post-hoc admissibility check when a plan can spike or duplicate
//     (see FaultPlan::admissibility_preserving).
//
// Fault counters are threaded through cs::Metrics ("fault.*" series); see
// docs/FAULTS.md for the schema and the degraded-mode semantics downstream.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "model/ids.hpp"

namespace cs {

/// Half-open real-time window [from, until).
struct TimeWindow {
  RealTime from{};
  RealTime until{std::numeric_limits<double>::infinity()};

  bool contains(RealTime t) const { return from <= t && t < until; }
};

/// Per-link fault knobs.  All probabilities are per message send.
struct LinkFaults {
  /// Message lost with this probability (sent, never delivered).
  double drop_probability{0.0};

  /// Message delivered twice (same MessageId) with this probability; the
  /// second copy arrives up to `duplicate_lag` seconds after the first.
  double duplicate_probability{0.0};
  double duplicate_lag{0.05};

  /// Delay spike: with this probability the message's delay is inflated by
  /// uniform(0, spike_magnitude] *on top of* the sampled delay — possibly
  /// past the link's declared upper bound (assumption violation on purpose).
  double spike_probability{0.0};
  double spike_magnitude{0.0};

  /// Link outage windows: messages *sent* while the link is down are lost.
  std::vector<TimeWindow> down;

  bool down_at(RealTime t) const {
    for (const TimeWindow& w : down)
      if (w.contains(t)) return true;
    return false;
  }

  /// True iff this configuration can only remove information (drops and
  /// outages), never corrupt it (duplicates, spikes).
  bool admissibility_preserving() const {
    return duplicate_probability == 0.0 && spike_probability == 0.0;
  }
};

/// Processor crash/restart: during the window the processor is dead — it
/// receives nothing (arriving messages are lost), its timers do not fire,
/// and (having no wakeups) it sends nothing.  Its clock keeps running and
/// its automaton state survives: this is the pause-crash (omission) model,
/// the strongest fault the paper's drift-free clocks admit without leaving
/// the execution model entirely.
struct CrashWindow {
  ProcessorId pid{0};
  TimeWindow window;
};

/// The full fault schedule of a run.  Link faults default to `default_link`
/// unless overridden per link; crashes are explicit windows.  Deterministic
/// given `seed` — see the header comment.
class FaultPlan {
 public:
  /// Seed of the fault randomness streams (independent of the sim seed).
  std::uint64_t seed{0xFA17u};

  /// Faults applied to every link without an explicit override.
  LinkFaults default_link;

  /// Mutable per-link override (order-insensitive endpoints); created from
  /// `default_link` on first access.
  LinkFaults& link(ProcessorId a, ProcessorId b);

  /// Effective faults of link {a, b}: the override or `default_link`.
  const LinkFaults& link_faults(ProcessorId a, ProcessorId b) const;

  /// Schedule a crash of `pid` over [from, until); omit `until` for a crash
  /// with no restart.
  void crash(ProcessorId pid, RealTime from,
             RealTime until = RealTime{std::numeric_limits<double>::infinity()});

  bool crashed_at(ProcessorId pid, RealTime t) const;

  const std::vector<CrashWindow>& crashes() const { return crashes_; }

  /// True iff no link can duplicate or spike: the surviving execution is
  /// then guaranteed admissible and the simulator keeps its post-hoc check.
  bool admissibility_preserving() const;

  /// Throws cs::Error on out-of-range probabilities, negative magnitudes or
  /// inverted windows.  The simulator validates on construction.
  void validate() const;

 private:
  static std::uint64_t key(ProcessorId a, ProcessorId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::unordered_map<std::uint64_t, LinkFaults> overrides_;
  std::vector<CrashWindow> crashes_;
};

/// Why a send was dropped (trace records carry the split, mirroring the
/// "fault.dropped" / "fault.link_down_drops" counters).
enum class DropCause : std::uint8_t {
  kNone,      ///< not dropped
  kRandom,    ///< lost to drop_probability
  kLinkDown,  ///< sent while the link was in a down window
};

/// Outcome of the per-send fault draw.  `extra_delay` applies to every
/// delivered copy; `duplicate_lag` is the duplicate's additional delay
/// beyond the first copy's.
struct FaultDecision {
  bool drop{false};
  DropCause cause{DropCause::kNone};
  bool duplicate{false};
  double extra_delay{0.0};
  double duplicate_lag{0.0};
};

/// Stateful executor of a FaultPlan inside one simulation run: owns the
/// per-link fault RNG streams and the fault counters.  Exactly five
/// uniforms are drawn per send regardless of outcome, so enabling one fault
/// kind never perturbs the draws of another — runs differing only in fault
/// parameters stay stream-aligned.
class FaultInjector {
 public:
  /// `plan` must outlive the injector (it is consulted per event).
  /// `link_count` is the topology's link count; link indices passed to
  /// on_send must be in [0, link_count).  `metrics` may be null.
  FaultInjector(const FaultPlan& plan, std::size_t link_count,
                Metrics* metrics);

  /// Fault decision for one message sent on link {a, b} (canonical index
  /// `link`) at real time `now`.  Updates the "fault.*" counters.
  FaultDecision on_send(std::size_t link, ProcessorId a, ProcessorId b,
                        RealTime now);

  /// Is `pid` crashed at `t`?  (Pure query; the caller counts the
  /// suppression under the event-specific counter.)
  bool crashed(ProcessorId pid, RealTime t) const {
    return plan_->crashed_at(pid, t);
  }

  Metrics* metrics() const { return metrics_; }

 private:
  const FaultPlan* plan_;
  std::vector<Rng> link_rngs_;
  Metrics* metrics_;
};

}  // namespace cs
