// Discrete-event scheduler queue.
//
// Orders pending simulation events by real time with a monotone sequence
// number as tie-break, so simulation runs are fully deterministic given a
// seed — a requirement for reproducible experiment tables and for the
// simulator determinism tests.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "model/ids.hpp"
#include "sim/event.hpp"

namespace cs {

class EventQueue {
 public:
  void push(RealTime at, SimEvent ev);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest pending real time.  Throws cs::Error when the queue is
  /// empty (previously UB via heap_.top()).
  RealTime next_time() const;

  /// Removes and returns the earliest event.  Throws cs::Error when the
  /// queue is empty.
  SimEvent pop();

 private:
  struct Entry {
    RealTime at;
    std::uint64_t seq;
    SimEvent ev;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_{0};
};

}  // namespace cs
