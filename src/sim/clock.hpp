// The (hardware) clock of one processor: never adjustable, and — in the
// paper's model — drift-free.
//
// The paper's clock reads t - S at real time t (§2.1 condition 4).  Clock
// is the only type in the library that converts between the two timelines;
// it lives in the simulator layer, i.e. on the outside-observer side of
// the fence.  Algorithm code never holds a Clock.
//
// Extension (experiment E9): a clock may run at a constant rate 1 + ρ
// instead of exactly 1, reading (t - S)(1 + ρ).  This steps outside the
// paper's model — the theory's shift arguments assume rate exactly 1 — and
// exists to measure empirically how gracefully the optimal algorithm
// degrades under the small drifts footnote 1 says practice handles by
// periodic re-synchronization.
#pragma once

#include <cassert>

#include "common/time.hpp"

namespace cs {

class Clock {
 public:
  Clock() = default;
  explicit Clock(RealTime start, double rate = 1.0)
      : start_(start), rate_(rate) {
    assert(rate > 0.0);
  }

  RealTime start() const { return start_; }
  double rate() const { return rate_; }

  ClockTime at(RealTime t) const {
    return ClockTime{(t - start_).sec * rate_};
  }
  RealTime real(ClockTime c) const {
    return start_ + Duration{c.sec / rate_};
  }

 private:
  RealTime start_{};
  double rate_{1.0};
};

}  // namespace cs
