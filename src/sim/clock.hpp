// The (hardware) clock of one processor: never adjustable, and — in the
// paper's model — drift-free.
//
// The paper's clock reads t - S at real time t (§2.1 condition 4).  Clock
// is the only type in the library that converts between the two timelines;
// it lives in the simulator layer, i.e. on the outside-observer side of
// the fence.  Algorithm code never holds a Clock.
//
// Drift extension (docs/DRIFT.md): a clock may run at a constant rate
// 1 + ρ instead of exactly 1, or follow a piecewise-constant RateSchedule
// (the bounded-random-walk oscillator).  The paper's shift arguments
// assume rate exactly 1; src/drift supplies the oscillator models, the
// per-link rate estimator that absorbs drift into the d̃ extremes, and the
// re-sync budget arithmetic that keeps precision bounded between epochs —
// the concrete version of the "periodic re-synchronization" footnote 1
// waves at.
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace cs {

/// Validates a clock rate: positive, finite, non-NaN.  Throws cs::Error —
/// a real check, not a debug-only assert, because campaign specs and CLI
/// flags feed rates in from user input in release builds too.
inline double validated_clock_rate(double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate))
    throw Error("clock rate must be positive and finite, got " +
                std::to_string(rate));
  return rate;
}

/// One segment of a piecewise-constant rate schedule: from `elapsed` real
/// seconds after the clock's start, the clock runs at `rate`.
struct RateSegment {
  double elapsed{0.0};
  double rate{1.0};

  bool operator==(const RateSegment&) const = default;
};

/// A piecewise-constant clock-rate trajectory (the random-walk oscillator
/// model, docs/DRIFT.md).  Segments are validated at construction: the
/// first starts at elapsed 0, breakpoints strictly increase, and every
/// rate is positive and finite — so the elapsed → clock map is strictly
/// increasing and exactly invertible.
class RateSchedule {
 public:
  explicit RateSchedule(std::vector<RateSegment> segments)
      : segments_(std::move(segments)) {
    if (segments_.empty())
      throw Error("rate schedule needs at least one segment");
    if (segments_.front().elapsed != 0.0)
      throw Error("rate schedule must start at elapsed 0");
    clock_.reserve(segments_.size());
    clock_.push_back(0.0);
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      validated_clock_rate(segments_[i].rate);
      if (i + 1 < segments_.size()) {
        if (segments_[i + 1].elapsed <= segments_[i].elapsed)
          throw Error("rate schedule breakpoints must strictly increase");
        clock_.push_back(clock_[i] +
                         (segments_[i + 1].elapsed - segments_[i].elapsed) *
                             segments_[i].rate);
      }
    }
  }

  std::span<const RateSegment> segments() const { return segments_; }

  /// Rate in effect `elapsed` real seconds after the clock start (the
  /// first segment's rate extends to negative elapsed, the last forever).
  double rate_at(double elapsed) const {
    return segments_[index_for_elapsed(elapsed)].rate;
  }

  /// Clock reading after `elapsed` real seconds (piecewise linear,
  /// strictly increasing; first/last rates extrapolate beyond the ends).
  double clock_at(double elapsed) const {
    const std::size_t i = index_for_elapsed(elapsed);
    return clock_[i] + (elapsed - segments_[i].elapsed) * segments_[i].rate;
  }

  /// Exact inverse of clock_at (all rates positive).
  double elapsed_at(double clock) const {
    std::size_t lo = 0, hi = segments_.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (clock_[mid] <= clock) lo = mid;
      else hi = mid;
    }
    return segments_[lo].elapsed + (clock - clock_[lo]) / segments_[lo].rate;
  }

  bool operator==(const RateSchedule& other) const {
    return segments_ == other.segments_;
  }

 private:
  std::size_t index_for_elapsed(double elapsed) const {
    std::size_t lo = 0, hi = segments_.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (segments_[mid].elapsed <= elapsed) lo = mid;
      else hi = mid;
    }
    return lo;
  }

  std::vector<RateSegment> segments_;
  std::vector<double> clock_;  ///< cumulative clock reading at segment start
};

class Clock {
 public:
  Clock() = default;
  explicit Clock(RealTime start, double rate = 1.0)
      : start_(start), rate_(validated_clock_rate(rate)) {}
  /// Schedule-driven clock (random-walk oscillator).  A null schedule
  /// degenerates to rate exactly 1.
  Clock(RealTime start, std::shared_ptr<const RateSchedule> schedule)
      : start_(start), schedule_(std::move(schedule)) {
    if (schedule_ != nullptr) rate_ = schedule_->segments().front().rate;
  }

  RealTime start() const { return start_; }
  /// Constant rate, or the schedule's initial rate.
  double rate() const { return rate_; }
  const RateSchedule* schedule() const { return schedule_.get(); }

  ClockTime at(RealTime t) const {
    const double elapsed = (t - start_).sec;
    return ClockTime{schedule_ != nullptr ? schedule_->clock_at(elapsed)
                                          : elapsed * rate_};
  }
  RealTime real(ClockTime c) const {
    return start_ + Duration{schedule_ != nullptr
                                 ? schedule_->elapsed_at(c.sec)
                                 : c.sec / rate_};
  }

 private:
  RealTime start_{};
  double rate_{1.0};
  std::shared_ptr<const RateSchedule> schedule_;
};

}  // namespace cs
