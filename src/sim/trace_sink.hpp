// The simulator's trace hook: every observable (and every faulted) event
// of a run, in dispatch order, with ground-truth real times.
//
// TraceSink is the seam between the simulator and the execution-trace
// subsystem (src/trace): the simulator calls these hooks as it dispatches,
// and src/trace's TraceWriter serializes them into the versioned
// chronosync-trace format.  Keeping the interface here (and the
// serialization there) preserves the layering — cs_sim knows nothing about
// file formats, cs_trace knows nothing about event queues.
//
// Hook order contract: hooks fire in the exact order the corresponding
// History::append calls happen (deliveries and timer fires before the
// automaton callback they trigger, sends inside it), so a single pass over
// the recorded events rebuilds every processor's View verbatim.  That is
// what makes replay (src/trace/replay.hpp) possible without a simulator.
#pragma once

#include "common/time.hpp"
#include "model/ids.hpp"

namespace cs {

class SystemModel;
struct SimOptions;
struct SimResult;

/// Why a sent message never produced a delivery event.
enum class LossCause : std::uint8_t {
  kSampler,   ///< the delay sampler drew +inf (modeled transit loss)
  kFaultDrop, ///< FaultPlan drop_probability fired
  kLinkDown,  ///< sent during a FaultPlan link outage window
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once, before any event, with the model and the options of the
  /// run (ground-truth start offsets, seed, clock rates).
  virtual void begin_run(const SystemModel& model,
                         const SimOptions& options) = 0;

  /// Message departure: `when` is the sender's clock at the send.
  virtual void record_send(RealTime t, ProcessorId from, ProcessorId to,
                           MessageId msg, ClockTime when) = 0;

  /// Message delivery consumed by a live receiver.
  virtual void record_delivery(RealTime t, ProcessorId to, ProcessorId from,
                               MessageId msg, ClockTime when) = 0;

  /// Message sent but never delivered, with the cause of the loss.
  virtual void record_loss(RealTime t, ProcessorId from, ProcessorId to,
                           MessageId msg, LossCause cause) = 0;

  /// Fault decision: a duplicate delivery of `msg` was scheduled `lag`
  /// seconds after the first copy.
  virtual void record_duplicate(RealTime t, ProcessorId from, ProcessorId to,
                                MessageId msg, double lag) = 0;

  /// Fault decision: the message's delay was inflated by `extra` seconds.
  virtual void record_spike(RealTime t, ProcessorId from, ProcessorId to,
                            MessageId msg, double extra) = 0;

  /// A delivery arrived at a crashed processor and was discarded.
  virtual void record_crash_drop(RealTime t, ProcessorId to,
                                 ProcessorId from, MessageId msg) = 0;

  virtual void record_timer_set(RealTime t, ProcessorId pid, ClockTime now,
                                ClockTime at) = 0;
  virtual void record_timer_fire(RealTime t, ProcessorId pid, ClockTime when,
                                 ClockTime at) = 0;

  /// A timer fired while its processor was crashed (lost wakeup).
  virtual void record_timer_suppressed(RealTime t, ProcessorId pid,
                                       ClockTime at) = 0;

  /// Called once after the last event with the run's summary tallies.
  virtual void end_run(const SimResult& result) = 0;
};

}  // namespace cs
