// Delay-assumption constraints on a single bidirectional link.
//
// A LinkConstraint realizes one set A_{p,q} of locally admissible history
// pairs (§5.1) in the form the algorithms need:
//
//   * admits(): the admissibility predicate, phrased over the multiset of
//     message delays on the link (all A_{p,q} in the paper depend on the
//     histories only through the delays, and are closed under constant
//     shifts by construction);
//   * mls(): the estimated maximal local shift m̃ls(p,q) from directed delay
//     statistics (§6's closed forms).
//
// Concrete models: BoundsConstraint ([lb, ub] with ub possibly infinite —
// covering the upper+lower, lower-only and no-bounds models, Cor 6.3/6.4),
// BiasConstraint (round-trip bias bound, Cor 6.6), and CompositeConstraint
// (simultaneous assumptions, Thm 5.6).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/extreal.hpp"
#include "common/interval.hpp"
#include "delaymodel/link_stats.hpp"
#include "model/ids.hpp"

namespace cs {

/// Observed actual delays on a link, oriented by the link's canonical
/// endpoints (a < b).
struct LinkDelays {
  std::vector<double> a_to_b;
  std::vector<double> b_to_a;
};

/// Timed per-direction observations on a link, canonical orientation.
struct TimedLinkDelays {
  std::vector<TimedObs> a_to_b;
  std::vector<TimedObs> b_to_a;

  LinkDelays untimed() const;
};

class LinkConstraint {
 public:
  LinkConstraint(ProcessorId a, ProcessorId b);
  virtual ~LinkConstraint() = default;

  LinkConstraint(const LinkConstraint&) = delete;
  LinkConstraint& operator=(const LinkConstraint&) = delete;

  ProcessorId a() const { return a_; }
  ProcessorId b() const { return b_; }

  /// Is a pair of histories inducing these delays locally admissible?
  virtual bool admits(const LinkDelays& delays) const = 0;

  /// m̃ls(p, q) where {p, q} = {a, b}: the estimated maximal local shift of
  /// q w.r.t. p, given estimated per-direction stats.  `pq` are the stats
  /// for direction p->q and `qp` for q->p.  (Feeding *actual* stats yields
  /// the actual mls — the same formula, Lemma 6.2 / 6.5.)
  virtual ExtReal mls(ProcessorId p, const DirectedStats& pq,
                      const DirectedStats& qp) const = 0;

  /// Time-aware variants.  Most models depend on delays only through the
  /// per-direction extremes, so the defaults reduce to the untimed forms;
  /// models whose admissibility references *when* messages were sent
  /// (WindowedBiasConstraint) override these.  The pipeline and the
  /// admissibility checker always call the timed entry points.
  virtual bool admits_timed(const TimedLinkDelays& delays) const;
  virtual ExtReal mls_timed(ProcessorId p, std::span<const TimedObs> pq,
                            std::span<const TimedObs> qp) const;

  /// Human-readable description for experiment tables.
  virtual std::string describe() const = 0;

 protected:
  /// Validates that p is one of the endpoints; returns the other one.
  ProcessorId other(ProcessorId p) const;

 private:
  ProcessorId a_;
  ProcessorId b_;
};

/// Delay bounds per direction: delays of a->b messages must lie in
/// `bounds_ab`, b->a delays in `bounds_ba`.  Lower bounds must be finite and
/// non-negative; upper bounds may be +inf.
class BoundsConstraint final : public LinkConstraint {
 public:
  BoundsConstraint(ProcessorId a, ProcessorId b, Interval bounds_ab,
                   Interval bounds_ba);

  const Interval& bounds(ProcessorId from) const;

  bool admits(const LinkDelays& delays) const override;
  ExtReal mls(ProcessorId p, const DirectedStats& pq,
              const DirectedStats& qp) const override;
  std::string describe() const override;

 private:
  Interval ab_;
  Interval ba_;
};

/// Round-trip bias bound: |d(m1) - d(m2)| <= bias for every pair of
/// messages in opposite directions, and all delays non-negative (§6.2).
class BiasConstraint final : public LinkConstraint {
 public:
  BiasConstraint(ProcessorId a, ProcessorId b, double bias);

  double bias() const { return bias_; }

  bool admits(const LinkDelays& delays) const override;
  ExtReal mls(ProcessorId p, const DirectedStats& pq,
              const DirectedStats& qp) const override;
  std::string describe() const override;

 private:
  double bias_;
};

/// Conjunction of several constraints on the same link.  Theorem 5.6: the
/// maximal local shift under the intersection is the min of the components'
/// maximal local shifts.
class CompositeConstraint final : public LinkConstraint {
 public:
  CompositeConstraint(ProcessorId a, ProcessorId b,
                      std::vector<std::unique_ptr<LinkConstraint>> parts);

  std::size_t part_count() const { return parts_.size(); }
  const LinkConstraint& part(std::size_t i) const { return *parts_[i]; }

  bool admits(const LinkDelays& delays) const override;
  ExtReal mls(ProcessorId p, const DirectedStats& pq,
              const DirectedStats& qp) const override;
  bool admits_timed(const TimedLinkDelays& delays) const override;
  ExtReal mls_timed(ProcessorId p, std::span<const TimedObs> pq,
                    std::span<const TimedObs> qp) const override;
  std::string describe() const override;

 private:
  std::vector<std::unique_ptr<LinkConstraint>> parts_;
};

// ---- Factories for the paper's four named models (§1) -------------------

/// Model 1: upper and lower bounds known (symmetric in both directions).
std::unique_ptr<LinkConstraint> make_bounds(ProcessorId a, ProcessorId b,
                                            double lb, double ub);

/// Asymmetric bounds per direction.
std::unique_ptr<LinkConstraint> make_bounds(ProcessorId a, ProcessorId b,
                                            Interval ab, Interval ba);

/// Model 2: only lower bounds known.
std::unique_ptr<LinkConstraint> make_lower_bound_only(ProcessorId a,
                                                      ProcessorId b,
                                                      double lb);

/// Model 3: no bounds at all (only non-negativity).
std::unique_ptr<LinkConstraint> make_no_bounds(ProcessorId a, ProcessorId b);

/// Model 4: bound on the round-trip delay bias.
std::unique_ptr<LinkConstraint> make_bias(ProcessorId a, ProcessorId b,
                                          double bias);

/// Conjunction of assumptions on one link (Thm 5.6).
std::unique_ptr<LinkConstraint> make_composite(
    ProcessorId a, ProcessorId b,
    std::vector<std::unique_ptr<LinkConstraint>> parts);

}  // namespace cs
