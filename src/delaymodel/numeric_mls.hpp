// Numeric maximal-local-shift oracle.
//
// The closed forms of §6 (Lemmas 6.2, 6.5) are easy to get subtly wrong —
// a sign error survives superficially plausible runs.  This oracle computes
// mls(p, q) directly from its definition: the sup of shifts s such that the
// link stays locally admissible when q's history is shifted by s, found by
// exponential + binary search over the admits() predicate.  Assumption 1
// (the admissible shifts form an interval) makes bisection sound; every
// constraint in this library satisfies it.
//
// Used by property tests and available to users adding new constraint types
// without a closed form.
#pragma once

#include "common/extreal.hpp"
#include "delaymodel/constraint.hpp"

namespace cs {

/// Computes mls(p, q) for the link of `c` (q is the other endpoint).
/// `observed` are the link's delays in the unshifted execution, canonically
/// oriented; it must be admissible under `c` (throws otherwise).  Shifts
/// with |s| > cap are reported as +inf.
ExtReal numeric_mls(const LinkConstraint& c, const LinkDelays& observed,
                    ProcessorId p, double cap = 1e9, double tol = 1e-9);

/// Applies a relative shift of q w.r.t. p to a link's delay multiset:
/// p->q delays shrink by s, q->p delays grow by s (the sign convention of
/// §4.1 under shift(pi, s) moving events earlier).
LinkDelays shift_link_delays(const LinkDelays& observed, ProcessorId p,
                             ProcessorId a, double s);

/// Timed analogue: additionally, q's send times move s earlier.
TimedLinkDelays shift_timed_link_delays(const TimedLinkDelays& observed,
                                        ProcessorId p, ProcessorId a,
                                        double s);

/// Timed oracle against admits_timed().  Time-aware models can violate
/// Assumption 1 (the admissible-shift set may not be an interval), so this
/// oracle computes sup{s admissible} by a fine forward scan plus local
/// bisection instead of assuming bisectability.  `resolution` bounds the
/// width of any admissible island the scan can miss.
ExtReal numeric_mls_timed(const LinkConstraint& c,
                          const TimedLinkDelays& observed, ProcessorId p,
                          double cap = 10.0, double resolution = 1e-3,
                          double tol = 1e-9);

}  // namespace cs
