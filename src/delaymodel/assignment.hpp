// SystemModel: the pair (G, A) — a topology plus one delay constraint per
// link.  This is the object both the simulator (to generate admissible
// executions) and the pipeline (to compute m̃ls) are configured with.
//
// Every link starts under the weakest assumption, "no bounds" (delays are
// only non-negative); callers strengthen links individually, which is how
// the paper's mixed/heterogeneous systems are expressed.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>

#include "delaymodel/constraint.hpp"
#include "graph/topology.hpp"
#include "model/execution.hpp"

namespace cs {

class SystemModel {
 public:
  explicit SystemModel(Topology topo);

  std::size_t processor_count() const { return topo_.node_count; }
  const Topology& topology() const { return topo_; }

  bool has_link(ProcessorId a, ProcessorId b) const;

  /// Replace the constraint on the link (c->a(), c->b()); the link must
  /// exist in the topology.
  void set_constraint(std::unique_ptr<LinkConstraint> c);

  /// Constraint of link {a, b} (order-insensitive).  Throws if not a link.
  const LinkConstraint& constraint(ProcessorId a, ProcessorId b) const;

  /// Observed actual delays of link {a, b} in an execution, oriented
  /// canonically (min endpoint -> max endpoint).
  LinkDelays link_delays(const Execution& exec, ProcessorId a,
                         ProcessorId b) const;

  /// Is the execution admissible under this system?  Locality (§5.1): true
  /// iff each link's constraint admits that link's delays.  Throws
  /// InvalidExecution if a message crosses a non-link pair.
  bool admissible(const Execution& exec) const;

 private:
  static std::uint64_t key(ProcessorId a, ProcessorId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Topology topo_;
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkConstraint>>
      constraints_;
};

}  // namespace cs
