// Per-direction delay statistics.
//
// Lemmas 6.2 and 6.5 show that for both the bounds model and the bias model
// the maximal local shift depends on the observed delays only through the
// per-direction extremes d_min(p,q) and d_max(p,q).  LinkStats is exactly
// that sufficient statistic.  It can be built from views (estimated delays,
// what the pipeline uses) or from an execution (actual delays, used for
// admissibility checking and test oracles).
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>

#include "common/extreal.hpp"
#include "model/execution.hpp"
#include "model/pairing.hpp"

namespace cs {

struct DirectedStats {
  /// Minimum observed delay on the direction; +inf when no message.
  ExtReal dmin = ExtReal::infinity();
  /// Maximum observed delay; -inf when no message (paper's convention).
  ExtReal dmax = ExtReal::neg_infinity();
  std::size_t count = 0;

  void add(double delay) {
    dmin = min(dmin, ExtReal{delay});
    dmax = max(dmax, ExtReal{delay});
    ++count;
  }
};

class LinkStats {
 public:
  /// Stats for direction p -> q; a zero-message DirectedStats if none.
  const DirectedStats& direction(ProcessorId p, ProcessorId q) const;

  void add(ProcessorId p, ProcessorId q, double delay);

  /// Install pre-aggregated extremes for one direction (merging with any
  /// existing entry).  Used by the drift estimator, whose detrended
  /// extremes are not expressible as a stream of raw add() calls.
  void add_stats(ProcessorId p, ProcessorId q, const DirectedStats& s);

  /// Estimated delays d̃(m) from views only (Lemma 6.1) — the pipeline path.
  static LinkStats estimated_from_views(
      std::span<const View> views,
      MatchPolicy policy = MatchPolicy::kStrict);

  /// Actual delays d(m) from ground truth — observer-only path.
  static LinkStats actual_from_execution(const Execution& exec);

 private:
  static std::uint64_t key(ProcessorId p, ProcessorId q) {
    return (static_cast<std::uint64_t>(p) << 32) | q;
  }
  std::unordered_map<std::uint64_t, DirectedStats> stats_;
};

/// A delay observation with its send time.  Two flavors share the type:
/// *actual* observations carry real send times and actual delays (the
/// admissibility side), *estimated* observations carry the sender's send
/// clock time and the estimated delay d̃ (the estimator side).  All §6
/// formulas are form-identical between the two (the S-terms telescope),
/// and that extends to the windowed-bias model — see windowed_bias.cpp for
/// the derivation.
struct TimedObs {
  double send{0.0};
  double delay{0.0};
};

/// Full per-direction observation lists with send times — the sufficient
/// statistic for *time-aware* models (windowed bias), where the extremes
/// alone are not enough.  Same two construction paths as LinkStats.
class LinkTraffic {
 public:
  /// Observations for direction p -> q, in insertion order.
  std::span<const TimedObs> direction(ProcessorId p, ProcessorId q) const;

  void add(ProcessorId p, ProcessorId q, TimedObs obs);

  /// Estimated observations (send clock of the sender, d̃) from views.
  /// `stats`, when non-null, receives the pairing tallies (orphans and
  /// duplicates skipped under kDropOrphans) for coverage reporting.
  static LinkTraffic estimated_from_views(
      std::span<const View> views,
      MatchPolicy policy = MatchPolicy::kStrict,
      PairingStats* stats = nullptr);

  /// Actual observations (real send time, actual delay) from ground truth.
  static LinkTraffic actual_from_execution(const Execution& exec);

 private:
  static std::uint64_t key(ProcessorId p, ProcessorId q) {
    return (static_cast<std::uint64_t>(p) << 32) | q;
  }
  std::unordered_map<std::uint64_t, std::vector<TimedObs>> traffic_;
};

}  // namespace cs
