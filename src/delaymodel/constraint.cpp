#include "delaymodel/constraint.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs {
namespace {

// Delays measured from an execution carry ~1 ulp of float noise (the
// simulator computes arrival = send + d, and d is later re-derived as
// arrival - send).  Admissibility is a physical predicate, so comparisons
// tolerate a picosecond of slack rather than demanding exact arithmetic.
constexpr double kAdmitTol = 1e-12;

}  // namespace

LinkConstraint::LinkConstraint(ProcessorId a, ProcessorId b) : a_(a), b_(b) {
  if (a >= b) throw InvalidAssumption("link endpoints must satisfy a < b");
}

ProcessorId LinkConstraint::other(ProcessorId p) const {
  if (p == a_) return b_;
  if (p == b_) return a_;
  throw InvalidAssumption("processor is not an endpoint of this link");
}

LinkDelays TimedLinkDelays::untimed() const {
  LinkDelays out;
  out.a_to_b.reserve(a_to_b.size());
  out.b_to_a.reserve(b_to_a.size());
  for (const TimedObs& o : a_to_b) out.a_to_b.push_back(o.delay);
  for (const TimedObs& o : b_to_a) out.b_to_a.push_back(o.delay);
  return out;
}

bool LinkConstraint::admits_timed(const TimedLinkDelays& delays) const {
  return admits(delays.untimed());
}

ExtReal LinkConstraint::mls_timed(ProcessorId p, std::span<const TimedObs> pq,
                                  std::span<const TimedObs> qp) const {
  DirectedStats spq, sqp;
  for (const TimedObs& o : pq) spq.add(o.delay);
  for (const TimedObs& o : qp) sqp.add(o.delay);
  return mls(p, spq, sqp);
}

// ---- BoundsConstraint ----------------------------------------------------

BoundsConstraint::BoundsConstraint(ProcessorId a, ProcessorId b,
                                   Interval bounds_ab, Interval bounds_ba)
    : LinkConstraint(a, b), ab_(bounds_ab), ba_(bounds_ba) {
  for (const Interval& iv : {ab_, ba_}) {
    if (!iv.lo().is_finite() || iv.lo() < ExtReal{0.0})
      throw InvalidAssumption(
          "lower delay bounds must be finite and non-negative");
  }
}

const Interval& BoundsConstraint::bounds(ProcessorId from) const {
  return from == a() ? ab_ : ba_;
}

bool BoundsConstraint::admits(const LinkDelays& delays) const {
  const auto ok = [](const Interval& iv, const std::vector<double>& ds) {
    return std::all_of(ds.begin(), ds.end(), [&](double d) {
      return ExtReal{d + kAdmitTol} >= iv.lo() &&
             ExtReal{d - kAdmitTol} <= iv.hi();
    });
  };
  return ok(ab_, delays.a_to_b) && ok(ba_, delays.b_to_a);
}

ExtReal BoundsConstraint::mls(ProcessorId p, const DirectedStats& pq,
                              const DirectedStats& qp) const {
  const ProcessorId q = other(p);
  // Lemma 6.2 / Cor 6.3:
  //   mls(p,q) = min( ub(q,p) - dmax(q,p),  dmin(p,q) - lb(p,q) ).
  // With estimated stats in, the estimated mls comes out.
  const ExtReal slack_reverse = bounds(q).hi() - qp.dmax;
  const ExtReal slack_forward = pq.dmin - bounds(p).lo();
  return min(slack_reverse, slack_forward);
}

std::string BoundsConstraint::describe() const {
  std::ostringstream os;
  os << "bounds[" << ab_.lo().str() << "," << ab_.hi().str() << "]/["
     << ba_.lo().str() << "," << ba_.hi().str() << "]";
  return os.str();
}

// ---- BiasConstraint --------------------------------------------------------

BiasConstraint::BiasConstraint(ProcessorId a, ProcessorId b, double bias)
    : LinkConstraint(a, b), bias_(bias) {
  if (bias < 0.0) throw InvalidAssumption("bias bound must be non-negative");
}

bool BiasConstraint::admits(const LinkDelays& delays) const {
  const auto nonneg = [](const std::vector<double>& ds) {
    return std::all_of(ds.begin(), ds.end(),
                       [](double d) { return d >= -kAdmitTol; });
  };
  if (!nonneg(delays.a_to_b) || !nonneg(delays.b_to_a)) return false;
  if (delays.a_to_b.empty() || delays.b_to_a.empty()) return true;
  const auto [min_ab, max_ab] =
      std::minmax_element(delays.a_to_b.begin(), delays.a_to_b.end());
  const auto [min_ba, max_ba] =
      std::minmax_element(delays.b_to_a.begin(), delays.b_to_a.end());
  return *max_ab - *min_ba <= bias_ + kAdmitTol &&
         *max_ba - *min_ab <= bias_ + kAdmitTol;
}

ExtReal BiasConstraint::mls(ProcessorId /*p*/, const DirectedStats& pq,
                            const DirectedStats& qp) const {
  // Lemma 6.5 / Cor 6.6:
  //   mls(p,q) = min( dmin(p,q), (bias + dmin(p,q) - dmax(q,p)) / 2 ).
  // The first term is the non-negativity part (A'), the second the pure
  // bias part (A''), combined per Thm 5.6.
  const ExtReal first = pq.dmin;
  const ExtReal second = (ExtReal{bias_} + pq.dmin - qp.dmax) / 2.0;
  return min(first, second);
}

std::string BiasConstraint::describe() const {
  std::ostringstream os;
  os << "bias[" << bias_ << "]";
  return os.str();
}

// ---- CompositeConstraint ---------------------------------------------------

CompositeConstraint::CompositeConstraint(
    ProcessorId a, ProcessorId b,
    std::vector<std::unique_ptr<LinkConstraint>> parts)
    : LinkConstraint(a, b), parts_(std::move(parts)) {
  if (parts_.empty())
    throw InvalidAssumption("composite constraint needs at least one part");
  for (const auto& p : parts_)
    if (p->a() != a || p->b() != b)
      throw InvalidAssumption("composite parts must share link endpoints");
}

bool CompositeConstraint::admits(const LinkDelays& delays) const {
  return std::all_of(parts_.begin(), parts_.end(),
                     [&](const auto& p) { return p->admits(delays); });
}

ExtReal CompositeConstraint::mls(ProcessorId p, const DirectedStats& pq,
                                 const DirectedStats& qp) const {
  // Theorem 5.6: mls under an intersection of local sets is the min of the
  // per-set mls values.
  ExtReal m = ExtReal::infinity();
  for (const auto& part : parts_) m = min(m, part->mls(p, pq, qp));
  return m;
}

bool CompositeConstraint::admits_timed(const TimedLinkDelays& delays) const {
  return std::all_of(parts_.begin(), parts_.end(), [&](const auto& p) {
    return p->admits_timed(delays);
  });
}

ExtReal CompositeConstraint::mls_timed(ProcessorId p,
                                       std::span<const TimedObs> pq,
                                       std::span<const TimedObs> qp) const {
  // Thm 5.6 applies verbatim to the timed variants.
  ExtReal m = ExtReal::infinity();
  for (const auto& part : parts_) m = min(m, part->mls_timed(p, pq, qp));
  return m;
}

std::string CompositeConstraint::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) os << " & ";
    os << parts_[i]->describe();
  }
  return os.str();
}

// ---- Factories -------------------------------------------------------------

std::unique_ptr<LinkConstraint> make_bounds(ProcessorId a, ProcessorId b,
                                            double lb, double ub) {
  const Interval iv{ExtReal{lb}, ExtReal{ub}};
  return std::make_unique<BoundsConstraint>(a, b, iv, iv);
}

std::unique_ptr<LinkConstraint> make_bounds(ProcessorId a, ProcessorId b,
                                            Interval ab, Interval ba) {
  return std::make_unique<BoundsConstraint>(a, b, ab, ba);
}

std::unique_ptr<LinkConstraint> make_lower_bound_only(ProcessorId a,
                                                      ProcessorId b,
                                                      double lb) {
  const Interval iv{ExtReal{lb}, ExtReal::infinity()};
  return std::make_unique<BoundsConstraint>(a, b, iv, iv);
}

std::unique_ptr<LinkConstraint> make_no_bounds(ProcessorId a, ProcessorId b) {
  return make_lower_bound_only(a, b, 0.0);
}

std::unique_ptr<LinkConstraint> make_bias(ProcessorId a, ProcessorId b,
                                          double bias) {
  return std::make_unique<BiasConstraint>(a, b, bias);
}

std::unique_ptr<LinkConstraint> make_composite(
    ProcessorId a, ProcessorId b,
    std::vector<std::unique_ptr<LinkConstraint>> parts) {
  return std::make_unique<CompositeConstraint>(a, b, std::move(parts));
}

}  // namespace cs
