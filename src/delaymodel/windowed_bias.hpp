// Windowed round-trip bias bounds — the generalization §6.2 notes:
// "it is possible to generalize our results to the more realistic model in
// which this assumption holds only for messages that were sent around the
// same time."
//
// WindowedBiasConstraint(b, W): delays are non-negative, and for every
// pair of opposite-direction messages whose *send times* differ by at most
// W, the delays differ by at most b.  Pairs sent further apart are
// unconstrained — load can drift, only short-term symmetry is promised.
// W = +inf degenerates to BiasConstraint.
//
// Estimation (derivation in windowed_bias.cpp): the admissible relative
// shifts are characterized entirely by view-computable quantities — pair
// send-clock differences Δc and estimated-delay differences D — so m̃ls is
// computed by a breakpoint sweep.  One caveat the paper's remark glosses
// over: the admissible-shift set of this model need not be an interval
// (Assumption 1 can fail — a pair can leave the window before its bias
// constraint would bind).  We report the supremum of the whole admissible
// set, which is always a *sound* over-approximation of the maximal local
// shift (over-estimating m̃ls only loosens the claimed precision, Thm 4.6's
// safe direction) and is exact whenever the set is connected — the common
// case.
#pragma once

#include "delaymodel/constraint.hpp"

namespace cs {

class WindowedBiasConstraint final : public LinkConstraint {
 public:
  WindowedBiasConstraint(ProcessorId a, ProcessorId b, double bias,
                         double window);

  double bias() const { return bias_; }
  double window() const { return window_; }

  /// Untimed fallback: conservative in each direction — admits() checks
  /// the bias against *all* pairs (as if every pair were in-window; never
  /// accepts an inadmissible execution), mls() uses the information-free
  /// upper envelope d̃min (never under-reports the maximal shift).  The
  /// timed entry points below are the authoritative ones and are what the
  /// pipeline calls.
  bool admits(const LinkDelays& delays) const override;
  ExtReal mls(ProcessorId p, const DirectedStats& pq,
              const DirectedStats& qp) const override;

  bool admits_timed(const TimedLinkDelays& delays) const override;
  ExtReal mls_timed(ProcessorId p, std::span<const TimedObs> pq,
                    std::span<const TimedObs> qp) const override;

  std::string describe() const override;

 private:
  double bias_;
  double window_;
};

/// Model 4', the windowed refinement of make_bias.
std::unique_ptr<LinkConstraint> make_windowed_bias(ProcessorId a,
                                                   ProcessorId b, double bias,
                                                   double window);

}  // namespace cs
