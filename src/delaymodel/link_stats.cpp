#include "delaymodel/link_stats.hpp"

namespace cs {

const DirectedStats& LinkStats::direction(ProcessorId p,
                                          ProcessorId q) const {
  static const DirectedStats kEmpty;
  const auto it = stats_.find(key(p, q));
  return it == stats_.end() ? kEmpty : it->second;
}

void LinkStats::add(ProcessorId p, ProcessorId q, double delay) {
  stats_[key(p, q)].add(delay);
}

void LinkStats::add_stats(ProcessorId p, ProcessorId q,
                          const DirectedStats& s) {
  DirectedStats& dst = stats_[key(p, q)];
  dst.dmin = min(dst.dmin, s.dmin);
  dst.dmax = max(dst.dmax, s.dmax);
  dst.count += s.count;
}

LinkStats LinkStats::estimated_from_views(std::span<const View> views,
                                          MatchPolicy policy) {
  LinkStats s;
  for (const PairedMessage& m : pair_messages(views, policy))
    s.add(m.from, m.to, m.estimated_delay().sec);
  return s;
}

LinkStats LinkStats::actual_from_execution(const Execution& exec) {
  LinkStats s;
  for (const TracedMessage& t : trace_messages(exec))
    s.add(t.msg.from, t.msg.to, t.delay().sec);
  return s;
}

std::span<const TimedObs> LinkTraffic::direction(ProcessorId p,
                                                 ProcessorId q) const {
  const auto it = traffic_.find(key(p, q));
  if (it == traffic_.end()) return {};
  return it->second;
}

void LinkTraffic::add(ProcessorId p, ProcessorId q, TimedObs obs) {
  traffic_[key(p, q)].push_back(obs);
}

LinkTraffic LinkTraffic::estimated_from_views(std::span<const View> views,
                                              MatchPolicy policy,
                                              PairingStats* stats) {
  LinkTraffic t;
  for (const PairedMessage& m : pair_messages(views, policy, stats))
    t.add(m.from, m.to,
          TimedObs{m.send_clock.sec, m.estimated_delay().sec});
  return t;
}

LinkTraffic LinkTraffic::actual_from_execution(const Execution& exec) {
  LinkTraffic t;
  for (const TracedMessage& tm : trace_messages(exec))
    t.add(tm.msg.from, tm.msg.to,
          TimedObs{tm.send_real.sec, tm.delay().sec});
  return t;
}

}  // namespace cs
