#include "delaymodel/assignment.hpp"

#include <utility>

#include "common/error.hpp"

namespace cs {

SystemModel::SystemModel(Topology topo) : topo_(std::move(topo)) {
  for (auto [a, b] : topo_.links)
    constraints_[key(a, b)] = make_no_bounds(a, b);
}

bool SystemModel::has_link(ProcessorId a, ProcessorId b) const {
  return constraints_.contains(key(a, b));
}

void SystemModel::set_constraint(std::unique_ptr<LinkConstraint> c) {
  const auto k = key(c->a(), c->b());
  const auto it = constraints_.find(k);
  if (it == constraints_.end())
    throw InvalidAssumption("constraint endpoints are not a topology link");
  it->second = std::move(c);
}

const LinkConstraint& SystemModel::constraint(ProcessorId a,
                                              ProcessorId b) const {
  const auto it = constraints_.find(key(a, b));
  if (it == constraints_.end()) throw InvalidAssumption("no such link");
  return *it->second;
}

LinkDelays SystemModel::link_delays(const Execution& exec, ProcessorId a,
                                    ProcessorId b) const {
  if (a > b) std::swap(a, b);
  LinkDelays out;
  for (const TracedMessage& t : trace_messages(exec)) {
    if (t.msg.from == a && t.msg.to == b)
      out.a_to_b.push_back(t.delay().sec);
    else if (t.msg.from == b && t.msg.to == a)
      out.b_to_a.push_back(t.delay().sec);
  }
  return out;
}

bool SystemModel::admissible(const Execution& exec) const {
  // Bucket timed delays per link once rather than re-scanning per link.
  std::unordered_map<std::uint64_t, TimedLinkDelays> delays;
  for (const TracedMessage& t : trace_messages(exec)) {
    const ProcessorId a = std::min(t.msg.from, t.msg.to);
    const ProcessorId b = std::max(t.msg.from, t.msg.to);
    if (!has_link(a, b))
      throw InvalidExecution("message sent between non-adjacent processors");
    TimedLinkDelays& d = delays[key(a, b)];
    (t.msg.from == a ? d.a_to_b : d.b_to_a)
        .push_back(TimedObs{t.send_real.sec, t.delay().sec});
  }
  for (const auto& [k, d] : delays)
    if (!constraints_.at(k)->admits_timed(d)) return false;
  return true;
}

}  // namespace cs
