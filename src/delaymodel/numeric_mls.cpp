#include "delaymodel/numeric_mls.hpp"

#include "common/error.hpp"

namespace cs {

LinkDelays shift_link_delays(const LinkDelays& observed, ProcessorId p,
                             ProcessorId a, double s) {
  LinkDelays out = observed;
  // If p is the canonical endpoint a, then q = b: a->b is the p->q
  // direction (delays - s), b->a is q->p (delays + s); mirrored otherwise.
  const bool p_is_a = (p == a);
  for (double& d : (p_is_a ? out.a_to_b : out.b_to_a)) d -= s;
  for (double& d : (p_is_a ? out.b_to_a : out.a_to_b)) d += s;
  return out;
}

TimedLinkDelays shift_timed_link_delays(const TimedLinkDelays& observed,
                                        ProcessorId p, ProcessorId a,
                                        double s) {
  TimedLinkDelays out = observed;
  const bool p_is_a = (p == a);
  // q's history moves s earlier: its outgoing delays grow by s and its
  // send times shrink by s; p->q delays shrink by s, p's sends untouched.
  for (TimedObs& o : (p_is_a ? out.a_to_b : out.b_to_a)) o.delay -= s;
  for (TimedObs& o : (p_is_a ? out.b_to_a : out.a_to_b)) {
    o.delay += s;
    o.send -= s;
  }
  return out;
}

ExtReal numeric_mls_timed(const LinkConstraint& c,
                          const TimedLinkDelays& observed, ProcessorId p,
                          double cap, double resolution, double tol) {
  if (!c.admits_timed(observed))
    throw InvalidAssumption("numeric_mls_timed requires an admissible start");

  const auto admissible_at = [&](double s) {
    return c.admits_timed(shift_timed_link_delays(observed, p, c.a(), s));
  };

  // Forward scan: the admissible set may be a union of intervals, so find
  // the largest admissible grid point, then sharpen the boundary above it
  // by bisection against the first inadmissible grid point.
  double best = 0.0;
  double above = -1.0;  // first scanned inadmissible point above `best`
  for (double s = 0.0; s <= cap; s += resolution) {
    if (admissible_at(s)) {
      best = s;
      above = -1.0;
    } else if (above < 0.0) {
      above = s;
    }
  }
  if (above < 0.0) return ExtReal::infinity();  // admissible beyond cap

  double lo = best, hi = above;
  while (hi - lo > tol) {
    const double mid = lo + (hi - lo) / 2.0;
    (admissible_at(mid) ? lo : hi) = mid;
  }
  return ExtReal{lo + (hi - lo) / 2.0};
}

ExtReal numeric_mls(const LinkConstraint& c, const LinkDelays& observed,
                    ProcessorId p, double cap, double tol) {
  if (!c.admits(observed))
    throw InvalidAssumption("numeric_mls requires an admissible execution");

  const auto admissible_at = [&](double s) {
    return c.admits(shift_link_delays(observed, p, c.a(), s));
  };

  // Exponential probe upward; by Assumption 1 the admissible set is an
  // interval containing 0, so the first inadmissible probe brackets mls.
  double lo = 0.0;
  double hi = 1.0;
  while (admissible_at(hi)) {
    lo = hi;
    hi *= 2.0;
    if (hi > cap) return ExtReal::infinity();
  }
  while (hi - lo > tol) {
    const double mid = lo + (hi - lo) / 2.0;
    (admissible_at(mid) ? lo : hi) = mid;
  }
  return ExtReal{lo + (hi - lo) / 2.0};
}

}  // namespace cs
