#include "delaymodel/windowed_bias.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace cs {
namespace {

constexpr double kTol = 1e-12;

// Derivation of the shift characterization.
//
// Shift q by s relative to p (events of q move s earlier).  For a message
// i: p->q with actual delay d_i and a message j: q->p with delay d_j:
//   * delays:       d_i' = d_i - s,   d_j' = d_j + s;
//   * send gap:     Δt_ij' = (t_i) - (t_j - s) = Δt_ij + s.
// The windowed bias condition on the shifted pair is therefore
//   |Δt_ij + s| <= W   ==>   |(d_i - d_j) - 2s| <= b,
// plus non-negativity  d_i - s >= 0  and  d_j + s >= 0.
//
// In estimated space, substitute σ = s + (S_p - S_q), Δc_ij = clock-send
// difference and D_ij = d̃_i - d̃_j: every S-term cancels and the system
// becomes
//   σ <= min_i d̃_i,   σ >= -min_j d̃_j,
//   |Δc_ij + σ| <= W  ==>  |D_ij - 2σ| <= b,
// so the admissible-σ set — and hence m̃ls(p,q) = mls(p,q) + S_p - S_q as
// its supremum — is computable from the views alone.
//
// The set is a finite union of closed intervals whose endpoints lie among
// the constraint breakpoints below, so the supremum is attained at a
// breakpoint (or at the non-negativity ceiling).

struct Pair {
  double gap;   // Δ (send_i - send_j)
  double diff;  // D (delay_i - delay_j)
};

/// sup{σ admissible} given the forward/backward observations for the
/// orientation being queried.  `fwd` are p->q messages, `bwd` q->p.
ExtReal sup_admissible(std::span<const TimedObs> fwd,
                       std::span<const TimedObs> bwd, double bias,
                       double window) {
  // Non-negativity bounds.
  double ceil = std::numeric_limits<double>::infinity();
  for (const TimedObs& o : fwd) ceil = std::min(ceil, o.delay);
  double floor = -std::numeric_limits<double>::infinity();
  for (const TimedObs& o : bwd) floor = std::max(floor, -o.delay);

  std::vector<Pair> pairs;
  pairs.reserve(fwd.size() * bwd.size());
  for (const TimedObs& i : fwd)
    for (const TimedObs& j : bwd)
      pairs.push_back({i.send - j.send, i.delay - j.delay});

  if (!std::isfinite(ceil)) {
    // No forward messages: no pair constraints, no ceiling.
    return ExtReal::infinity();
  }

  const auto admissible = [&](double sigma) {
    if (sigma < floor - kTol || sigma > ceil + kTol) return false;
    for (const Pair& pr : pairs) {
      if (std::fabs(pr.gap + sigma) <= window + kTol &&
          std::fabs(pr.diff - 2.0 * sigma) > bias + kTol)
        return false;
    }
    return true;
  };

  // Candidate suprema: the ceiling, plus every σ where a pair enters or
  // leaves the window (±W - Δ) or where its bias condition becomes tight
  // ((D ± b) / 2).
  std::vector<double> candidates{ceil};
  if (std::isfinite(floor)) candidates.push_back(floor);
  for (const Pair& pr : pairs) {
    candidates.push_back(window - pr.gap);
    candidates.push_back(-window - pr.gap);
    candidates.push_back((pr.diff + bias) / 2.0);
    candidates.push_back((pr.diff - bias) / 2.0);
  }

  bool any = false;
  double best = 0.0;
  for (double c : candidates) {
    if (c > ceil) c = ceil;  // clamp window/bias breakpoints to the ceiling
    if (std::isfinite(floor) && c < floor) c = floor;
    if (admissible(c) && (!any || c > best)) {
      any = true;
      best = c;
    }
  }
  if (!any)
    throw InvalidAssumption(
        "windowed-bias observations admit no shift at all; the execution "
        "contradicts the declared assumptions");
  return ExtReal{best};
}

}  // namespace

WindowedBiasConstraint::WindowedBiasConstraint(ProcessorId a, ProcessorId b,
                                               double bias, double window)
    : LinkConstraint(a, b), bias_(bias), window_(window) {
  if (bias < 0.0) throw InvalidAssumption("bias bound must be non-negative");
  if (window < 0.0)
    throw InvalidAssumption("window width must be non-negative");
}

bool WindowedBiasConstraint::admits(const LinkDelays& delays) const {
  // Conservative: pretend all pairs are in-window (W = inf).  Never
  // accepts an execution the timed predicate would reject.
  const BiasConstraint all_pairs(a(), b(), bias_);
  return all_pairs.admits(delays);
}

ExtReal WindowedBiasConstraint::mls(ProcessorId /*p*/,
                                    const DirectedStats& pq,
                                    const DirectedStats& /*qp*/) const {
  // Sound upper envelope without timing: only non-negativity is certain.
  return pq.dmin;
}

bool WindowedBiasConstraint::admits_timed(
    const TimedLinkDelays& delays) const {
  const auto nonneg = [](const std::vector<TimedObs>& os) {
    return std::all_of(os.begin(), os.end(),
                       [](const TimedObs& o) { return o.delay >= -kTol; });
  };
  if (!nonneg(delays.a_to_b) || !nonneg(delays.b_to_a)) return false;
  for (const TimedObs& i : delays.a_to_b)
    for (const TimedObs& j : delays.b_to_a)
      if (std::fabs(i.send - j.send) <= window_ + kTol &&
          std::fabs(i.delay - j.delay) > bias_ + kTol)
        return false;
  return true;
}

ExtReal WindowedBiasConstraint::mls_timed(ProcessorId /*p*/,
                                          std::span<const TimedObs> pq,
                                          std::span<const TimedObs> qp) const {
  return sup_admissible(pq, qp, bias_, window_);
}

std::string WindowedBiasConstraint::describe() const {
  std::ostringstream os;
  os << "wbias[" << bias_ << ",W=" << window_ << "]";
  return os.str();
}

std::unique_ptr<LinkConstraint> make_windowed_bias(ProcessorId a,
                                                   ProcessorId b, double bias,
                                                   double window) {
  return std::make_unique<WindowedBiasConstraint>(a, b, bias, window);
}

}  // namespace cs
