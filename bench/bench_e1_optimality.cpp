// E1 — Optimal precision vs delay uncertainty across topologies.
//
// Claim exercised (Thms 4.4/4.6): the pipeline's guaranteed precision
// equals Ã^max on every instance, scales linearly with the per-link
// uncertainty u = ub - lb, and the realized precision never exceeds it.
// Expected shape: A^max grows ~linearly in u; complete graphs synchronize
// tighter than rings than lines (more constraint cycles); realized <= A^max
// everywhere (violations column must stay 0).

#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E1", "precision vs uncertainty (lb = 1ms, ub = lb + u)");

  constexpr int kSeeds = 20;
  constexpr double kLb = 0.001;

  Table table({"topology", "u (ms)", "A^max mean (ms)", "A^max/u",
               "realized mean (ms)", "violations"});

  for (const std::string topo_name : {"line", "ring", "complete"}) {
    for (const double u_ms : {1.0, 2.0, 5.0, 10.0, 20.0}) {
      const double ub = kLb + u_ms * 1e-3;
      Accumulator a_max, realized;
      int violations = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 131);
        SystemModel model =
            bounded_model(make_named(topo_name, 8, rng), kLb, ub);
        const Instance inst = probe(model, seed, /*skew=*/0.25);
        const SyncOutcome out = synchronize(model, inst.views);
        const double a = out.optimal_precision.finite();
        const double r = realized_precision(inst.starts, out.corrections);
        a_max.add(a * 1e3);
        realized.add(r * 1e3);
        if (r > a + 1e-9) ++violations;
      }
      table.add_row({topo_name, Table::num(u_ms), Table::num(a_max.mean()),
                     Table::num(a_max.mean() / u_ms, 3),
                     Table::num(realized.mean()),
                     std::to_string(violations)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: A^max ~ linear in u; complete < ring < line; "
               "violations = 0\n";
  return 0;
}
