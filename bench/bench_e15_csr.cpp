// E15 — CSR/arena hot path: per-epoch pipeline cost after the flat-graph
// rebuild, on the E11 grid extended to n = 256.
//
// Claim exercised: with the CSR closure kernels (johnson_into + dijkstra
// on flat arrays), dense SHIFTS cycle-mean kernels, and all per-epoch
// scratch in reusable EpochArenas, the delta-aware pipeline beats the
// from-scratch recompute by >= 10x per epoch at n = 256 on single-edge
// deltas — from-scratch pays O(n^3) closure work per epoch while the
// incremental path touches O(n^2).
//
// The scenario grid is a superset of bench_e11_pipeline's (same names,
// same seeds, same perturbation streams), so BENCH_csr.json is directly
// comparable against BENCH_pipeline.json arm for arm.  Output path:
// argv[1], default ./BENCH_csr.json.

#include <chrono>
#include <fstream>
#include <sstream>

#include "core/global_estimates.hpp"
#include "graph/arena.hpp"
#include "graph/incremental_apsp.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Sparse m̃ls-shaped graph: bidirectional ring plus random chords, small
/// positive weights — the same generator (and seeds) as bench_e11_pipeline.
struct MlsInstance {
  std::size_t n{0};
  std::vector<Edge> edges;

  Digraph build() const {
    Digraph g(n);
    for (const Edge& e : edges) g.add_edge(e.from, e.to, e.weight);
    return g;
  }
};

MlsInstance make_instance(std::size_t n, Rng& rng) {
  MlsInstance inst;
  inst.n = n;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId u = static_cast<NodeId>((v + 1) % n);
    inst.edges.push_back({v, u, rng.uniform(0.05, 0.5)});
    inst.edges.push_back({u, v, rng.uniform(0.05, 0.5)});
  }
  for (std::size_t c = 0; c < n; ++c) {
    const NodeId a = static_cast<NodeId>(rng.uniform_int(n));
    const NodeId b = static_cast<NodeId>(rng.uniform_int(n));
    if (a != b) inst.edges.push_back({a, b, rng.uniform(0.05, 0.5)});
  }
  return inst;
}

enum class Perturbation { kDecreaseOnly, kMixed };

void perturb(MlsInstance& inst, Perturbation kind, Rng& rng) {
  if (kind == Perturbation::kDecreaseOnly) {
    Edge& e = inst.edges[rng.uniform_int(inst.edges.size())];
    e.weight *= rng.uniform(0.6, 0.95);
    return;
  }
  switch (rng.uniform_int(4)) {
    case 0:
    case 1: {
      Edge& e = inst.edges[rng.uniform_int(inst.edges.size())];
      e.weight *= rng.uniform(0.6, 0.95);
      break;
    }
    case 2: {
      Edge& e = inst.edges[rng.uniform_int(inst.edges.size())];
      e.weight *= rng.uniform(1.05, 1.6);
      break;
    }
    default: {
      const NodeId a = static_cast<NodeId>(rng.uniform_int(inst.n));
      const NodeId b = static_cast<NodeId>(rng.uniform_int(inst.n));
      if (a != b) inst.edges.push_back({a, b, rng.uniform(0.05, 0.5)});
      break;
    }
  }
}

struct ArmResult {
  double total_seconds{0.0};
  std::size_t epochs{0};
  Metrics metrics;
};

/// From-scratch oracle arm: full Johnson closure + cold SHIFTS per epoch.
ArmResult run_scratch(std::size_t n, std::size_t epochs, Perturbation kind,
                      std::uint64_t seed, CycleMeanAlgorithm algorithm) {
  Rng rng(seed);
  MlsInstance inst = make_instance(n, rng);
  ArmResult arm;
  arm.epochs = epochs;
  const auto start = Clock::now();
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (epoch > 0) perturb(inst, kind, rng);
    const DistanceMatrix ms = global_shift_estimates(
        inst.build(), ApspAlgorithm::kJohnson, &arm.metrics);
    ShiftsOptions options;
    options.algorithm = algorithm;
    options.metrics = &arm.metrics;
    const ShiftsResult shifts = compute_shifts(ms, options);
    if (!shifts.bounded()) throw Error("E15: instance must stay bounded");
  }
  arm.total_seconds = seconds_since(start);
  return arm;
}

/// Incremental arm on the CSR hot path: delta-updated closure, Howard
/// warm-started from the previous policy, SHIFTS scratch in a reused arena.
ArmResult run_incremental(std::size_t n, std::size_t epochs,
                          Perturbation kind, std::uint64_t seed) {
  Rng rng(seed);
  MlsInstance inst = make_instance(n, rng);
  ArmResult arm;
  arm.epochs = epochs;
  IncrementalApsp apsp(IncrementalApspOptions{}, &arm.metrics);
  EpochArena shifts_arena;
  std::vector<NodeId> policy;
  const auto start = Clock::now();
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (epoch > 0) perturb(inst, kind, rng);
    {
      auto t = Metrics::scoped(&arm.metrics, "stage.global_estimates_seconds");
      if (!apsp.update(slack_relaxed_mls(inst.build())))
        throw Error("E15: instance must stay admissible");
    }
    ShiftsOptions options;
    options.algorithm = CycleMeanAlgorithm::kHoward;
    options.metrics = &arm.metrics;
    options.arena = &shifts_arena;
    if (!policy.empty()) options.warm_policy = &policy;
    const ShiftsResult shifts = compute_shifts(apsp.distances(), options);
    policy = shifts.policy;
    if (!shifts.bounded()) throw Error("E15: instance must stay bounded");
  }
  arm.total_seconds = seconds_since(start);
  return arm;
}

double stage_sum(const Metrics& m, const std::string& name) {
  const MetricSeries* s = m.series(name);
  return s == nullptr ? 0.0 : s->sum;
}

void arm_json(std::ostringstream& out, const std::string& indent,
              const ArmResult& arm) {
  const std::uint64_t incr = arm.metrics.counter("apsp.incremental_updates");
  const std::uint64_t rebuilds = arm.metrics.counter("apsp.full_rebuilds");
  const std::uint64_t apsp_steps = incr + rebuilds +
                                   arm.metrics.counter("apsp.from_scratch_runs");
  out << "{\n"
      << indent << "  \"epochs\": " << arm.epochs << ",\n"
      << indent << "  \"total_seconds\": " << arm.total_seconds << ",\n"
      << indent << "  \"per_epoch_seconds\": "
      << arm.total_seconds / static_cast<double>(arm.epochs) << ",\n"
      << indent << "  \"stage_seconds\": {\n"
      << indent << "    \"global_estimates\": "
      << stage_sum(arm.metrics, "stage.global_estimates_seconds") << ",\n"
      << indent << "    \"shifts\": "
      << stage_sum(arm.metrics, "stage.shifts_seconds") << "\n"
      << indent << "  },\n"
      << indent << "  \"apsp\": {\n"
      << indent << "    \"incremental_updates\": " << incr << ",\n"
      << indent << "    \"full_rebuilds\": " << rebuilds << ",\n"
      << indent << "    \"from_scratch_runs\": "
      << arm.metrics.counter("apsp.from_scratch_runs") << ",\n"
      << indent << "    \"dirty_fallbacks\": "
      << arm.metrics.counter("apsp.dirty_fallbacks") << ",\n"
      << indent << "    \"incremental_hit_rate\": "
      << (apsp_steps == 0
              ? 0.0
              : static_cast<double>(incr) / static_cast<double>(apsp_steps))
      << "\n"
      << indent << "  },\n"
      << indent << "  \"howard\": {\n"
      << indent << "    \"warm_starts\": "
      << arm.metrics.counter("cycle_mean.howard_warm_starts") << ",\n"
      << indent << "    \"backstop_exits\": "
      << arm.metrics.counter("cycle_mean.howard_backstop_exits") << ",\n"
      << indent << "    \"mean_iterations\": "
      << (arm.metrics.series("cycle_mean.howard_iterations") == nullptr
              ? 0.0
              : arm.metrics.series("cycle_mean.howard_iterations")->mean())
      << "\n"
      << indent << "  }\n"
      << indent << "}";
}

struct Scenario {
  std::string name;
  std::size_t n;
  std::size_t epochs;
  Perturbation kind;
  std::uint64_t seed;
};

int run(const std::string& json_path) {
  print_header("E15", "CSR/arena hot path: per-epoch cost vs from-scratch");

  // E11's grid (same seeds, comparable arm for arm) extended to n = 256,
  // where the >= 10x per-epoch acceptance bar applies.
  const std::vector<Scenario> scenarios{
      {"single_edge_decrease_n64", 64, 50, Perturbation::kDecreaseOnly, 211},
      {"single_edge_decrease_n128", 128, 50, Perturbation::kDecreaseOnly,
       212},
      {"mixed_single_edge_n64", 64, 50, Perturbation::kMixed, 213},
      {"single_edge_decrease_n256", 256, 50, Perturbation::kDecreaseOnly,
       214},
      {"mixed_single_edge_n256", 256, 50, Perturbation::kMixed, 215},
  };

  Table table({"scenario", "n", "epochs", "scratch_karp_ms",
               "scratch_howard_ms", "incremental_ms", "speedup_vs_karp",
               "speedup_vs_howard", "hit_rate"});

  std::ostringstream json;
  json << "{\n  \"schema_version\": 1,\n  \"bench\": \"e15_csr\",\n"
       << "  \"scenarios\": [\n";

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& sc = scenarios[s];
    // Warm the allocator/caches once so the first arm is not penalized.
    (void)run_incremental(sc.n, 3, sc.kind, sc.seed);

    const ArmResult karp = run_scratch(sc.n, sc.epochs, sc.kind, sc.seed,
                                       CycleMeanAlgorithm::kKarp);
    const ArmResult howard = run_scratch(sc.n, sc.epochs, sc.kind, sc.seed,
                                         CycleMeanAlgorithm::kHoward);
    const ArmResult inc = run_incremental(sc.n, sc.epochs, sc.kind, sc.seed);

    const double speedup_karp = karp.total_seconds / inc.total_seconds;
    const double speedup_howard = howard.total_seconds / inc.total_seconds;
    const std::uint64_t incr_updates =
        inc.metrics.counter("apsp.incremental_updates");
    const double hit_rate =
        static_cast<double>(incr_updates) /
        static_cast<double>(incr_updates +
                            inc.metrics.counter("apsp.full_rebuilds"));

    table.add_row({sc.name, std::to_string(sc.n), std::to_string(sc.epochs),
                   Table::num(karp.total_seconds * 1e3, 2),
                   Table::num(howard.total_seconds * 1e3, 2),
                   Table::num(inc.total_seconds * 1e3, 2),
                   Table::num(speedup_karp, 2),
                   Table::num(speedup_howard, 2),
                   Table::num(hit_rate, 3)});

    json << "    {\n      \"name\": \"" << sc.name << "\",\n"
         << "      \"n\": " << sc.n << ",\n"
         << "      \"epochs\": " << sc.epochs << ",\n"
         << "      \"perturbation\": \""
         << (sc.kind == Perturbation::kDecreaseOnly ? "single_edge_decrease"
                                                    : "mixed_single_edge")
         << "\",\n      \"seed\": " << sc.seed << ",\n"
         << "      \"arms\": {\n        \"from_scratch_karp\": ";
    arm_json(json, "        ", karp);
    json << ",\n        \"from_scratch_howard\": ";
    arm_json(json, "        ", howard);
    json << ",\n        \"incremental_warm\": ";
    arm_json(json, "        ", inc);
    json << "\n      },\n"
         << "      \"speedup_vs_from_scratch_karp\": " << speedup_karp
         << ",\n"
         << "      \"speedup_vs_from_scratch_howard\": " << speedup_howard
         << "\n    }" << (s + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  table.print(std::cout);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "E15: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(argc > 1 ? argv[1] : "BENCH_csr.json");
}
