// E17 — drifting oscillators: realized precision vs the drift-adjusted
// bound, as drift magnitude x re-sync interval x topology.
//
// Claims exercised (docs/DRIFT.md):
//   * With scheduled re-synchronization every epoch of every arm is sound:
//     the ground-truth corrected spread stays within
//     Ã^max + 2ρ·(W + I) — enforced, not just reported.
//   * The bound degrades gracefully as the re-sync interval stretches (the
//     2ρ·I term), and tightens as it shrinks — the precision-vs-interval
//     curve per drift magnitude.
//   * With re-sync disabled a single sync held to the horizon visibly
//     violates its bound at realistic drift (the footnote-1 demonstration);
//     the run requires at least one such violation to appear.
//   * The detrending estimator keeps every fitted pairwise slope within
//     the physical 2ρ clamp, under both oscillator models.
//
// Usage: bench_e17_drift [--quick] [out.json]   (default ./BENCH_drift.json)
// --quick shrinks topologies and the horizon for CI smoke; the committed
// artifact is the full run.

#include <chrono>

#include "drift/harness.hpp"
#include "drift/scheduler.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;
using namespace cs::drift;
using SteadyClock = std::chrono::steady_clock;

constexpr double kLb = 0.001;
constexpr double kUb = 0.025;

struct TopoArm {
  std::string name;
  Topology topo;
  std::uint64_t seed;
};

struct OscArm {
  std::string model;  ///< "const" or "walk"
  double ppm;
};

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

int run(bool quick, const std::string& json_path) {
  print_header("E17", "drift: precision vs re-sync interval, per magnitude");

  // The estimator's guard (ρ·W) must stay inside the slack the
  // middle-quarter sampling leaves (0.375·(ub − lb) = 9 ms): at the top
  // 500 ppm magnitude that caps the estimation window near 18 s, which
  // bounds both the longest re-sync interval and horizon/4.
  const double horizon = quick ? 40.0 : 48.0;
  // 0 = re-sync disabled: one sync at horizon/4 held to the end.
  const std::vector<double> intervals =
      quick ? std::vector<double>{0.0, 10.0, 5.0}
            : std::vector<double>{0.0, 16.0, 8.0, 4.0};

  std::vector<TopoArm> topologies;
  if (quick) {
    topologies.push_back({"ring 6", make_ring(6), 1701});
    topologies.push_back({"complete 4", make_complete(4), 1702});
  } else {
    topologies.push_back({"ring 8", make_ring(8), 1701});
    topologies.push_back({"complete 6", make_complete(6), 1702});
  }

  // Three constant magnitudes give the curve; the walk arm shows the
  // estimator handling a wandering rate at the middle magnitude.
  const std::vector<OscArm> oscillators = {
      {"const", 50.0}, {"const", 200.0}, {"const", 500.0}, {"walk", 200.0}};

  Table table({"topology", "model", "ppm", "resync", "epochs", "claimed",
               "bound", "realized", "sound", "max_slope"});
  BenchJson json("e17_drift");
  std::size_t noresync_violations = 0;

  for (const TopoArm& t : topologies) {
    const SystemModel model = bounded_model(t.topo, kLb, kUb);
    const std::size_t n = model.processor_count();
    for (const OscArm& osc : oscillators) {
      for (const double interval : intervals) {
        // The estimator's guard ρ·W must keep clear headroom inside the
        // sampling margin or the widened estimates go physically
        // inconsistent; arms past 3/4 of the margin are dropped loudly,
        // not run into a negative-cycle abort.
        const double window_eff = interval > 0.0 ? interval : horizon / 4.0;
        const double margin = 0.375 * (kUb - kLb);
        if (osc.ppm * 1e-6 * window_eff > 0.75 * margin) {
          std::cout << "skip " << t.name << " " << osc.model << " "
                    << osc.ppm << "ppm resync " << interval
                    << ": guard rho*W exceeds the sampling margin\n";
          continue;
        }
        DriftTrialConfig config;
        config.oscillator.kind = osc.model == "walk"
                                     ? OscillatorSpec::Kind::kRandomWalk
                                     : OscillatorSpec::Kind::kConstant;
        config.oscillator.ppm = osc.ppm;
        if (osc.model == "walk") {
          config.oscillator.step_ppm = osc.ppm / 4.0;
          config.oscillator.interval = horizon / 32.0;
          config.oscillator.horizon = horizon;
        }
        config.resync = interval;
        config.horizon = horizon;
        config.skew = 0.25;
        config.sample_lo = kLb + 0.375 * (kUb - kLb);
        config.sample_hi = kLb + 0.625 * (kUb - kLb);
        config.sim_seed = t.seed;
        config.drift_seed = t.seed + 7;
        Rng rng(t.seed);
        config.start_offsets = random_start_offsets(n, config.skew, rng);

        const auto t0 = SteadyClock::now();
        const DriftTrialResult r = run_drift_trial(model, config);
        const double trial_seconds = seconds_since(t0);
        if (!r.ok) throw Error("E17 " + t.name + ": " + r.failure);

        // Soundness is part of the benchmark: every re-sync arm must hold
        // its drift-adjusted bound; the no-re-sync arms are the
        // counter-demonstration and are only tallied.
        if (interval > 0.0 && !r.sound)
          throw Error("E17 " + t.name + " " + osc.model + " " +
                      std::to_string(osc.ppm) + "ppm resync " +
                      std::to_string(interval) +
                      ": bound violated under scheduled re-sync");
        if (interval == 0.0 && !r.sound) ++noresync_violations;
        if (r.max_abs_slope > 2.0 * osc.ppm * 1e-6 + 1e-12)
          throw Error("E17 " + t.name + ": fitted slope escaped the 2rho clamp");

        const std::string ppm_label =
            std::to_string(static_cast<int>(osc.ppm));
        const std::string resync_label =
            interval > 0.0 ? std::to_string(static_cast<int>(interval)) + " s"
                           : "none";
        json.scenario(t.name + "/" + osc.model + " " + ppm_label +
                      "ppm/resync " + resync_label)
            .field("topology", t.name)
            .field("nodes", n)
            .field("model", osc.model)
            .field("ppm", osc.ppm)
            .field("resync", interval)
            .field("horizon", horizon)
            .field("epochs", r.epochs)
            .field("window", r.window)
            .field("claimed_max", r.claimed_max)
            .field("bound_max", r.bound_max)
            .field("realized_max", r.realized_max)
            .field("sound", r.sound ? "true" : "false")
            .field("thm46_gap", r.thm46_gap)
            .field("directions_fitted", r.directions_fitted)
            .field("directions_raw", r.directions_raw)
            .field("max_abs_slope", r.max_abs_slope)
            .field("delivered", r.delivered)
            .field("trial_seconds", trial_seconds);

        table.add_row({t.name, osc.model, ppm_label, resync_label, std::to_string(r.epochs),
                       Table::num(r.claimed_max, 6), Table::num(r.bound_max, 6),
                       Table::num(r.realized_max, 6),
                       r.sound ? "yes" : "NO",
                       Table::num(r.max_abs_slope * 1e6, 1) + "ppm"});
      }
    }
  }

  // The demonstration the drift subsystem exists for: somewhere in the
  // sweep, disabling re-sync must have broken the bound.
  if (noresync_violations == 0)
    throw Error("E17: no no-re-sync arm violated its bound — the "
                "counter-demonstration is missing");
  std::cout << "no-re-sync violations: " << noresync_violations << "\n";

  table.print(std::cout);
  return json.write(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_drift.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick")
      quick = true;
    else
      out = arg;
  }
  return run(quick, out);
}
