// Shared scaffolding for the experiment binaries (E1-E8).
//
// Each bench is a standalone executable that prints one or more tables to
// stdout — the reproduction of "the rows the paper reports".  The PODC '93
// preliminary paper contains no empirical tables, so these tables realize
// the claims of its theorems empirically; EXPERIMENTS.md records the
// expected shapes and the measured outcomes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/cristian.hpp"
#include "baselines/hmm.hpp"
#include "baselines/lundelius_lynch.hpp"
#include "baselines/midpoint.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/precision.hpp"
#include "core/shifts.hpp"
#include "core/synchronizer.hpp"
#include "graph/cycle_mean.hpp"
#include "graph/johnson.hpp"
#include "proto/ping_pong.hpp"
#include "sim/simulator.hpp"

namespace cs::bench {

struct Instance {
  SimResult sim;
  std::vector<View> views;
  std::vector<RealTime> starts;
};

/// Run the ping-pong probe protocol on the model and package what the
/// evaluators need.
inline Instance probe(const SystemModel& model, std::uint64_t seed,
                      double skew, std::size_t rounds = 4,
                      double delay_scale = 0.1) {
  Rng rng(seed);
  SimOptions opts;
  opts.start_offsets =
      random_start_offsets(model.processor_count(), skew, rng);
  opts.seed = seed;
  opts.delay_scale = delay_scale;
  // Scale the runaway guard with the instance so 100k-node fabrics (E16)
  // fit; a protocol misbehaving relative to the topology still trips it.
  opts.max_events = std::max<std::size_t>(
      opts.max_events,
      64 * (rounds + 1) *
          (model.topology().link_count() + model.processor_count()));
  PingPongParams params;
  params.warmup = Duration{skew + 0.1};
  params.rounds = rounds;
  Instance inst{simulate(model, make_ping_pong(params), opts), {}, {}};
  inst.views = inst.sim.execution.views();
  inst.starts = inst.sim.execution.start_times();
  return inst;
}

/// Guaranteed precision ρ̄ of an arbitrary correction vector on this
/// instance (evaluated against the instance's own m̃s estimates).
inline double guaranteed(const SyncOutcome& opt,
                         const std::vector<double>& x) {
  return guaranteed_precision(opt.ms_estimates, x).finite();
}

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n==== " << id << ": " << title << " ====\n";
}

/// Builder for the standard bench-JSON shape shared by the instrumented
/// benches (BENCH_*.json artifacts):
///
///   {"schema_version": 1, "bench": NAME, "scenarios": [{...}, ...]}
///
/// Fields keep insertion order; doubles render with %.17g so reports
/// round-trip exactly.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchJson& scenario(const std::string& name) {
    rows_.emplace_back();
    return field("name", name);
  }
  BenchJson& field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
    return *this;
  }
  BenchJson& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  BenchJson& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    rows_.back().emplace_back(key, buf);
    return *this;
  }
  BenchJson& field(const std::string& key, std::size_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }

  /// Writes the document; returns false (with a stderr note) on I/O error.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    os << "{\n  \"schema_version\": 1,\n  \"bench\": \"" << bench_
       << "\",\n  \"scenarios\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "    {";
      for (std::size_t f = 0; f < rows_[r].size(); ++f)
        os << (f == 0 ? "" : ",") << "\n      \"" << rows_[r][f].first
           << "\": " << rows_[r][f].second;
      os << "\n    }" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// Uniform per-link constraint helpers (mirror the test builders; benches
/// must not link against test code).
inline SystemModel bounded_model(Topology topo, double lb, double ub) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_bounds(a, b, lb, ub));
  return m;
}

inline SystemModel lower_bound_model(Topology topo, double lb) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_lower_bound_only(a, b, lb));
  return m;
}

inline SystemModel bias_model(Topology topo, double bias) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_bias(a, b, bias));
  return m;
}

inline SystemModel composite_model(Topology topo, double lb, double ub,
                                   double bias) {
  SystemModel m(std::move(topo));
  for (auto [a, b] : m.topology().links) {
    std::vector<std::unique_ptr<LinkConstraint>> parts;
    parts.push_back(make_bounds(a, b, lb, ub));
    parts.push_back(make_bias(a, b, bias));
    m.set_constraint(make_composite(a, b, std::move(parts)));
  }
  return m;
}

}  // namespace cs::bench
