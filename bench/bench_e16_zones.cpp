// E16 — zone-hierarchical synchronization: precision vs zone size, and the
// 100k-agent datacenter fabric the dense pipeline cannot touch.
//
// Claims exercised:
//   * The Thm 5.5/5.6 composition is sound at every zone granularity —
//     realized precision never exceeds the composed bound, and the composed
//     bound contains the dense instance optimum Ã^max.
//   * The bound inflation (composed / dense) is the price of never
//     materializing the dense m̃s matrix; the curve over zone sizes shows
//     where that price sits for a datacenter fabric.
//   * A dc 4x512x199 fabric — 102,404 agents — synchronizes in one epoch
//     under natural (per-rack) zoning, with per-zone Thm 4.6 equality on
//     every bounded zone.  Dense APSP at that n is ~10^15 work; no dense
//     arm is attempted there.
//
// Usage: bench_e16_zones [--quick] [out.json]   (default ./BENCH_zones.json)
// --quick shrinks the fabrics for CI smoke; the committed artifact is the
// full run.

#include <chrono>
#include <thread>

#include "core/local_estimates.hpp"
#include "core/zones.hpp"
#include "lab/topo.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;
using cs::lab::make_datacenter;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr double kLb = 0.002;
constexpr double kUb = 0.008;

struct Fabric {
  std::string name;
  std::size_t spines, racks, hosts;
  std::uint64_t seed;
  bool dense_arm;  ///< whether the dense optimum is computed for reference
  std::size_t rounds;

  std::size_t nodes() const { return spines + racks + racks * hosts; }
};

struct ZoneArm {
  std::string name;  ///< "natural" or "size K"
  std::size_t size;  ///< 0 = natural (per-rack) zoning
};

void run_fabric(BenchJson& json, Table& table, const Fabric& f,
                std::span<const ZoneArm> arms, std::size_t threads) {
  const SystemModel model =
      bounded_model(make_datacenter(f.spines, f.racks, f.hosts), kLb, kUb);
  const auto probe_start = Clock::now();
  const Instance inst = probe(model, f.seed, 0.2, f.rounds, 0.05);
  const double probe_seconds = seconds_since(probe_start);

  const auto mls_start = Clock::now();
  SyncOptions opts;
  opts.threads = threads;
  const Digraph mls = local_shift_estimates(model, inst.views,
                                            MatchPolicy::kStrict, opts.threads);
  const double mls_seconds = seconds_since(mls_start);

  // Dense reference: the instance optimum Ã^max (only where n permits).
  double dense_optimum = 0.0;
  double dense_seconds = 0.0;
  if (f.dense_arm) {
    const auto t0 = Clock::now();
    const SyncOutcome dense = synchronize_mls(mls, opts);
    dense_seconds = seconds_since(t0);
    dense_optimum = dense.optimal_precision.finite();
    const double realized = realized_precision(inst.starts, dense.corrections);
    json.scenario(f.name + "/dense")
        .field("fabric", f.name)
        .field("nodes", model.processor_count())
        .field("arm", "dense")
        .field("zone_count", std::size_t{1})
        .field("bound", dense_optimum)
        .field("realized", realized)
        .field("solve_seconds", dense_seconds)
        .field("probe_seconds", probe_seconds)
        .field("mls_seconds", mls_seconds);
    table.add_row({f.name, std::to_string(model.processor_count()), "dense",
                   "1", Table::num(dense_optimum, 6), Table::num(realized, 6),
                   "1.00", Table::num(dense_seconds * 1e3, 1)});
  }

  for (const ZoneArm& arm : arms) {
    const ZonePlan plan =
        arm.size == 0 ? datacenter_zones(f.spines, f.racks, f.hosts)
                      : greedy_bfs_zones(model.topology(), arm.size);
    const auto t0 = Clock::now();
    const ZonedOutcome out = synchronize_zoned_mls(mls, plan, opts);
    const double solve_seconds = seconds_since(t0);
    if (!out.bounded()) throw Error("E16: fabric must stay bounded");

    const ZoneRealized realized =
        realized_precision_zoned(inst.starts, out.corrections, out.plan);
    double gap = out.quotient_thm46_gap;
    std::size_t max_size = 0;
    for (const ZoneStats& z : out.zones) {
      gap = std::max(gap, z.thm46_gap);
      max_size = std::max<std::size_t>(max_size, z.size);
    }
    const double bound = out.composed_bound.finite();
    const double inflation = f.dense_arm ? bound / dense_optimum : 0.0;

    json.scenario(f.name + "/" + arm.name)
        .field("fabric", f.name)
        .field("nodes", model.processor_count())
        .field("arm", arm.name)
        .field("zone_count", out.plan.count)
        .field("zone_max_size", max_size)
        .field("bound", bound)
        .field("realized", realized.overall)
        .field("realized_intra", realized.intra)
        .field("realized_cross", realized.cross)
        .field("max_zone_a_max", out.max_zone_a_max)
        .field("quotient_a_max", out.quotient_a_max.finite())
        .field("thm46_max_gap", gap)
        .field("solve_seconds", solve_seconds)
        .field("probe_seconds", probe_seconds)
        .field("mls_seconds", mls_seconds)
        .field("threads", threads);
    if (f.dense_arm) json.field("bound_over_dense", inflation);

    // Soundness is part of the benchmark, not just the tests.
    if (realized.overall > bound + 1e-9)
      throw Error("E16: realized precision exceeded the composed bound");
    if (f.dense_arm && bound + 1e-9 < dense_optimum)
      throw Error("E16: composed bound fell below the dense optimum");
    if (gap > 1e-6)
      throw Error("E16: per-zone Thm 4.6 equality violated");

    table.add_row({f.name, std::to_string(model.processor_count()), arm.name,
                   std::to_string(out.plan.count), Table::num(bound, 6),
                   Table::num(realized.overall, 6),
                   f.dense_arm ? Table::num(inflation, 2) : std::string("-"),
                   Table::num(solve_seconds * 1e3, 1)});
  }
}

int run(bool quick, const std::string& json_path) {
  print_header("E16", "zone composition: precision vs zone size, 100k fabric");
  const std::size_t threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Curve fabric: dense still tractable, so the bound inflation is measured
  // arm for arm.  Scale fabric: past the dense wall (no dense arm).
  const Fabric curve = quick ? Fabric{"dc_2x8x16", 2, 8, 16, 1601, true, 3}
                             : Fabric{"dc_4x24x40", 4, 24, 40, 1601, true, 3};
  const Fabric scale = quick
                           ? Fabric{"dc_2x64x49", 2, 64, 49, 1602, false, 2}
                           : Fabric{"dc_4x512x199", 4, 512, 199, 1602, false,
                                    2};

  const std::vector<ZoneArm> curve_arms{
      {"natural", 0}, {"size 8", 8},   {"size 16", 16},
      {"size 32", 32}, {"size 64", 64}, {"size 128", 128}};
  const std::vector<ZoneArm> scale_arms{{"natural", 0}};

  Table table({"fabric", "n", "arm", "zones", "bound", "realized",
               "bound/dense", "solve_ms"});
  BenchJson json("e16_zones");

  run_fabric(json, table, curve, curve_arms, threads);
  run_fabric(json, table, scale, scale_arms, threads);

  table.print(std::cout);
  return json.write(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_zones.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick")
      quick = true;
    else
      out = arg;
  }
  return run(quick, out);
}
