// E2 — Synchronization without upper bounds on delay.
//
// Claim exercised (§3, §6.1): with lower bounds only, the *worst-case*
// precision of any algorithm is unbounded (+inf), yet the per-instance
// optimal precision is finite on every actual run, and it tightens as the
// probe count grows (d̃min sharpens towards lb).  This is the regime the
// paper says previous theory could not address at all.
// Expected shape: worst-case column is always +inf; per-instance precision
// finite and decreasing in probe rounds; heavy-tailed links degrade
// per-instance precision but never the trend.

#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E2",
               "lower-bound-only links: per-instance precision vs probes");

  constexpr int kSeeds = 15;
  constexpr double kLb = 0.002;

  Table table({"tail", "probe rounds", "worst case", "A^max mean (ms)",
               "A^max p90 (ms)", "one-shot HMM (ms)"});

  struct Tail {
    std::string name;
    double mean_excess;  // exponential tail above lb
  };

  for (const Tail& tail : {Tail{"exp(5ms)", 0.005}, Tail{"exp(20ms)", 0.02}}) {
    for (const std::size_t rounds : {1u, 2u, 4u, 8u, 16u}) {
      Accumulator a_max, hmm;
      std::vector<double> samples;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        SystemModel model = lower_bound_model(make_ring(6), kLb);
        // Explicit samplers so the tail is what this experiment sweeps.
        std::vector<std::unique_ptr<DelaySampler>> samplers;
        for (std::size_t i = 0; i < model.topology().link_count(); ++i)
          samplers.push_back(
              make_shifted_exponential_sampler(kLb, tail.mean_excess));
        Rng rng(static_cast<std::uint64_t>(seed) * 733);
        SimOptions opts;
        opts.start_offsets = random_start_offsets(6, 0.25, rng);
        opts.seed = static_cast<std::uint64_t>(seed);
        PingPongParams params;
        params.warmup = Duration{0.35};
        params.rounds = rounds;
        const SimResult sim = simulate(model, make_ping_pong(params),
                                       std::move(samplers), opts);
        const auto views = sim.execution.views();
        const SyncOutcome out = synchronize(model, views);
        a_max.add(out.optimal_precision.finite() * 1e3);
        samples.push_back(out.optimal_precision.finite() * 1e3);
        hmm.add(hmm_one_shot(model, views).optimal_precision.finite() * 1e3);
      }
      table.add_row({tail.name, std::to_string(rounds), "+inf",
                     Table::num(a_max.mean()),
                     Table::num(percentile(samples, 0.9)),
                     Table::num(hmm.mean())});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: finite per-instance precision, decreasing in "
               "rounds; HMM (first probe only) stays flat\n";
  return 0;
}
