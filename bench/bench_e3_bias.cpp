// E3 — Round-trip bias bounds vs absolute delay bounds.
//
// Claim exercised (Cor 6.3 vs Cor 6.6 + Thm 5.6): when the bias bound b is
// small relative to the absolute uncertainty u = ub - lb, the bias model
// yields (much) better precision than the bounds model; as b grows past u
// the ordering flips; the composite (both assumptions, Thm 5.6) is never
// worse than either.  Traffic is drawn once per instance, admissible under
// all three assumption sets, and each pipeline runs on the same views.
// Expected shape: A_bias grows with b and crosses A_bounds near b ~ u;
// A_composite = min-ish of the two (<= both columns everywhere).

#include <algorithm>

#include "delaymodel/windowed_bias.hpp"
#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E3", "bias-bound vs absolute-bound precision, ring of 6");

  constexpr double kLb = 0.010;
  constexpr double kUb = 0.030;  // u = 20ms
  constexpr int kSeeds = 20;

  Table table({"b (ms)", "A bounds-only (ms)", "A bias-only (ms)",
               "A composite (ms)", "composite <= both"});

  for (const double b_ms : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    const double b = b_ms * 1e-3;
    Accumulator bounds_a, bias_a, comp_a;
    int dominated = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const Topology topo = make_ring(6);
      // Generation: correlated delays inside [lb, ub] with spread <= b so
      // the execution is admissible under all three assumption sets.
      SystemModel generator = composite_model(topo, kLb, kUb, b);
      const Instance inst =
          probe(generator, static_cast<std::uint64_t>(seed) * 389, 0.25);

      SystemModel bounds_only = bounded_model(topo, kLb, kUb);
      SystemModel bias_only = bias_model(topo, b);
      SystemModel composite = composite_model(topo, kLb, kUb, b);

      const double a_bounds =
          synchronize(bounds_only, inst.views).optimal_precision.finite();
      const double a_bias =
          synchronize(bias_only, inst.views).optimal_precision.finite();
      const double a_comp =
          synchronize(composite, inst.views).optimal_precision.finite();
      bounds_a.add(a_bounds * 1e3);
      bias_a.add(a_bias * 1e3);
      comp_a.add(a_comp * 1e3);
      if (a_comp <= a_bounds + 1e-12 && a_comp <= a_bias + 1e-12)
        ++dominated;
    }
    table.add_row({Table::num(b_ms), Table::num(bounds_a.mean()),
                   Table::num(bias_a.mean()), Table::num(comp_a.mean()),
                   std::to_string(dominated) + "/" +
                       std::to_string(kSeeds)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: bias-only beats bounds-only for small b, loses "
               "for large b; composite column <= both, 20/20 dominated\n";

  // ---- E3b: the windowed-bias refinement (§6.2's noted generalization).
  // Two processors probe in bursts 10s apart; within a burst delays are
  // symmetric to within b = 10ms, but the congestion level drifts 30ms
  // between bursts.  A plain bias bound is simply false for this system;
  // a windowed bound with W below the burst spacing is true and buys
  // burst-grade precision.
  print_header("E3b", "windowed vs plain bias under drifting congestion");
  {
    // Hand-built two-node execution with exact timed delays.
    struct Msg {
      double send, delay;
    };
    std::vector<Msg> fwd, bwd;
    Rng rng(77);
    for (int burst = 0; burst < 4; ++burst) {
      // Base offset of 1s keeps every receive clock positive despite the
      // start skew below.
      const double t0 = 1.0 + 10.0 * burst;
      const double center = 0.040 + 0.030 * burst;  // drifting congestion
      for (int i = 0; i < 3; ++i) {
        fwd.push_back({t0 + 0.1 * i, center + rng.uniform(-0.004, 0.004)});
        bwd.push_back(
            {t0 + 0.05 + 0.1 * i, center + rng.uniform(-0.004, 0.004)});
      }
    }
    // Materialize as an execution (starts 0.7 and 0.2).
    const double s0 = 0.7, s1 = 0.2;
    std::vector<History> hs;
    hs.emplace_back(0, RealTime{s0});
    hs.emplace_back(1, RealTime{s1});
    struct Pending {
      ProcessorId pid;
      double clock;
      ViewEvent ev;
    };
    std::vector<Pending> events;
    MessageId id = 1;
    auto emit = [&](ProcessorId from, ProcessorId to, const Msg& m,
                    double s_from, double s_to) {
      ViewEvent send;
      send.kind = EventKind::kSend;
      send.when = ClockTime{m.send};
      send.msg = id;
      send.peer = to;
      events.push_back({from, m.send, send});
      ViewEvent recv;
      recv.kind = EventKind::kReceive;
      recv.when = ClockTime{s_from + m.send + m.delay - s_to};
      recv.msg = id++;
      recv.peer = from;
      events.push_back({to, recv.when.sec, recv});
    };
    for (const Msg& m : fwd) emit(0, 1, m, s0, s1);
    for (const Msg& m : bwd) emit(1, 0, m, s1, s0);
    std::sort(events.begin(), events.end(),
              [](const Pending& a, const Pending& b) {
                return a.clock < b.clock;
              });
    for (const Pending& p : events) hs[p.pid].append(p.ev);
    const Execution exec{std::move(hs)};
    const auto views = exec.views();

    Table wtable({"model", "admissible", "A^max (ms)"});
    auto eval = [&](const char* name,
                    std::unique_ptr<LinkConstraint> constraint) {
      SystemModel m{make_line(2)};
      m.set_constraint(std::move(constraint));
      const bool ok = m.admissible(exec);
      std::string a = "-";
      if (ok) {
        const SyncOutcome out = synchronize(m, views);
        a = Table::num(out.optimal_precision.finite() * 1e3);
      }
      wtable.add_row({name, ok ? "yes" : "NO", a});
    };
    eval("plain bias b=10ms", make_bias(0, 1, 0.010));
    eval("windowed b=10ms W=2s", make_windowed_bias(0, 1, 0.010, 2.0));
    eval("windowed b=10ms W=5s", make_windowed_bias(0, 1, 0.010, 5.0));
    eval("windowed b=10ms W=15s (too wide)",
         make_windowed_bias(0, 1, 0.010, 15.0));
    eval("bounds-only [10ms, 200ms]", make_bounds(0, 1, 0.010, 0.200));
    wtable.print(std::cout);
    std::cout << "\nexpected: plain bias and too-wide windows are falsified "
                 "by the drift; in-spacing windows admit and synchronize "
                 "at burst precision, far tighter than loose bounds\n";
  }
  return 0;
}
