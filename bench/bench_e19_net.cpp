// E19 — wire-scale transport: bytes on the wire and session scale.
//
// Two scenarios, written to BENCH_net.json:
//
//   wire_bytes — one epoch of probe traffic for a complete graph, encoded
//     twice: compact (ProbeBatch/EchoBatch, 24-bit stamps, batched samples)
//     vs the canonical full-width fallback (one Full frame per
//     observation).  The acceptance gate is compact using >= 3x fewer
//     bytes per epoch.
//
//   sessions — one SyncServer process serving N concurrent loopback
//     clients (default 1200; --quick 128), each with its own socket:
//     Hello handshake + probe/echo round trip.  The acceptance gate is
//     >= 1000 concurrent sessions in one process (full mode).
//
// Usage: bench_e19_net [--quick] [--out PATH]
// Exit: 0 = gates hold, 1 = a gate failed, 2 = environment failure.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "net/server.hpp"
#include "net/timestamp.hpp"
#include "net/wire.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::net;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- scenario 1: bytes per epoch, compact vs full-width ----------------

struct WireBytes {
  std::size_t compact_bytes{0};
  std::size_t full_bytes{0};
  std::size_t observations{0};
};

// One epoch for a complete graph on n agents, `rounds` probe rounds: every
// ordered pair (p, q) carries `rounds` probe samples and `rounds` echo
// records.  `batch` is the N:M amortization factor — samples per
// ProbeBatch/EchoBatch frame (1 = streamed, one frame per round;
// `rounds` = fully batched, the format's design point).  The full-width
// fallback always carries one observation per self-describing Full frame
// (probe = (seq, t_send); echo = (seq, t_send, t_recv, t_reply)).
WireBytes epoch_bytes(std::size_t n, std::size_t rounds, std::size_t batch) {
  WireBytes out;
  const std::int64_t t0 = to_ticks(1234.5);
  std::uint64_t msg_id = 1;
  for (std::uint32_t p = 0; p < n; ++p) {
    for (std::uint32_t q = 0; q < n; ++q) {
      if (p == q) continue;
      for (std::size_t first = 0; first < rounds; first += batch) {
        const std::size_t count = std::min(batch, rounds - first);
        ProbeBatch probe;
        probe.from = p;
        probe.to = q;
        EchoBatch echo;
        echo.from = p;
        echo.to = q;
        echo.eseq = first + 1;
        echo.t_reply24 = compress24(t0);
        for (std::size_t r = first; r < first + count; ++r) {
          const std::uint64_t seq = r + 1;
          const std::int64_t t_send =
              t0 + static_cast<std::int64_t>(r) * 20000;
          probe.samples.push_back({seq, compress24(t_send)});
          echo.samples.push_back(
              {seq, compress24(t_send), compress24(t_send + 50)});

          FullMessage probe_full;
          probe_full.id = msg_id++;
          probe_full.from = p;
          probe_full.to = q;
          probe_full.tag = 1;
          probe_full.data = {static_cast<double>(seq), from_ticks(t_send)};
          out.full_bytes += encode(Frame{probe_full}).size();
          FullMessage echo_full;
          echo_full.id = msg_id++;
          echo_full.from = p;
          echo_full.to = q;
          echo_full.tag = 2;
          echo_full.data = {static_cast<double>(seq), from_ticks(t_send),
                            from_ticks(t_send + 50),
                            from_ticks(t_send + 90)};
          out.full_bytes += encode(Frame{echo_full}).size();
          out.observations += 2;
        }
        out.compact_bytes += encode(Frame{probe}).size();
        out.compact_bytes += encode(Frame{echo}).size();
      }
    }
  }
  return out;
}

// ---- scenario 2: concurrent sessions in one process --------------------

struct SessionsResult {
  std::size_t clients{0};
  std::size_t sessions{0};
  std::size_t peak{0};
  std::uint64_t frames{0};
  std::uint64_t echoed{0};
  double elapsed{0.0};
  bool ok{false};
};

SessionsResult run_sessions(std::size_t clients, Metrics& metrics) {
  SessionsResult out;
  out.clients = clients;

  SyncServerConfig config;
  config.agent = 9999;
  config.metrics = &metrics;
  SyncServer server(std::move(config));
  const SocketAddress target = server.local_address();

  std::vector<int> fds;
  fds.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      std::fprintf(stderr, "socket() failed at client %zu: %s\n", i,
                   std::strerror(errno));
      for (const int f : fds) ::close(f);
      return out;
    }
    fds.push_back(fd);
  }

  sockaddr_in dst;
  to_sockaddr(target, dst);
  const double start = now_seconds();

  // Hello + one probe per client, in chunks so the server's socket buffer
  // never overflows (clients here do not retry; the real daemons do).
  const std::size_t chunk = 32;
  for (std::size_t i = 0; i < clients; ++i) {
    std::vector<std::uint8_t> datagram;
    encode(Frame{Hello{static_cast<std::uint32_t>(i),
                       to_ticks(now_seconds())}},
           datagram);
    ProbeBatch probe;
    probe.from = static_cast<std::uint32_t>(i);
    probe.to = 9999;
    probe.samples = {{1, compress24(to_ticks(now_seconds()))}};
    encode(Frame{probe}, datagram);
    (void)::sendto(fds[i], datagram.data(), datagram.size(), 0,
                   reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
    if ((i + 1) % chunk == 0) server.step(0);
  }

  // Drain until every frame is in or nothing arrives for a while.
  const std::uint64_t expect_frames = 2 * clients;
  double quiet_since = now_seconds();
  while (server.frames_received() < expect_frames &&
         now_seconds() - quiet_since < 2.0) {
    const std::uint64_t before = server.frames_received();
    server.step(10);
    if (server.frames_received() != before) quiet_since = now_seconds();
  }
  out.elapsed = now_seconds() - start;

  // Count replies on a sample of clients (HelloAck + EchoBatch each).
  timeval tv{0, 100'000};
  for (std::size_t i = 0; i < std::min<std::size_t>(clients, 32); ++i) {
    ::setsockopt(fds[i], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    std::vector<std::uint8_t> buf(kMaxDatagramBytes);
    for (int r = 0; r < 2; ++r) {
      const ssize_t got = ::recv(fds[i], buf.data(), buf.size(), 0);
      if (got <= 0) break;
      const DecodeResult result = decode(std::span<const std::uint8_t>(
          buf.data(), static_cast<std::size_t>(got)));
      if (result.ok() &&
          std::get_if<EchoBatch>(&result.frame.body) != nullptr)
        ++out.echoed;
    }
  }

  // Let a sweep publish the session gauges.
  const double sweep_deadline = now_seconds() + 2.5;
  while (now_seconds() < sweep_deadline && server.peak_sessions() == 0)
    server.step(20);

  out.sessions = metrics.counter("runtime.net.sessions_created");
  out.peak = server.peak_sessions();
  out.frames = server.frames_received();
  out.ok = out.sessions >= clients && out.peak >= clients;

  for (const int fd : fds) ::close(fd);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
  }

  cs::bench::print_header("E19", "wire-scale transport");
  cs::bench::BenchJson json("e19_net");

  // ---- wire bytes ------------------------------------------------------
  const std::size_t n = 8;
  const std::size_t rounds = 6;
  const WireBytes streamed = epoch_bytes(n, rounds, /*batch=*/1);
  const WireBytes batched = epoch_bytes(n, rounds, /*batch=*/rounds);
  const double streamed_ratio = static_cast<double>(streamed.full_bytes) /
                                static_cast<double>(streamed.compact_bytes);
  const double batched_ratio = static_cast<double>(batched.full_bytes) /
                               static_cast<double>(batched.compact_bytes);
  std::printf(
      "wire bytes, one epoch (n=%zu complete, %zu rounds, %zu obs):\n"
      "  full-width        %8zu bytes   (one Full frame per observation)\n"
      "  compact streamed  %8zu bytes   %5.2fx fewer (one sample per frame)\n"
      "  compact batched   %8zu bytes   %5.2fx fewer (N:M batches, gate >= "
      "3x)\n\n",
      n, rounds, batched.observations, batched.full_bytes,
      streamed.compact_bytes, streamed_ratio, batched.compact_bytes,
      batched_ratio);
  json.scenario("wire_bytes")
      .field("agents", n)
      .field("rounds", rounds)
      .field("observations", batched.observations)
      .field("bytes_full", batched.full_bytes)
      .field("bytes_compact_streamed", streamed.compact_bytes)
      .field("ratio_streamed", streamed_ratio)
      .field("bytes_compact_batched", batched.compact_bytes)
      .field("ratio_batched", batched_ratio);
  bool ok = batched_ratio >= 3.0;

  // ---- concurrent sessions --------------------------------------------
  const std::size_t clients = quick ? 128 : 1200;
  cs::Metrics metrics;
  const SessionsResult sr = run_sessions(clients, metrics);
  if (sr.frames == 0 && sr.sessions == 0) return 2;
  std::printf(
      "sessions, one process (%zu loopback clients%s):\n"
      "  sessions created %zu, peak %zu  (gate: >= 1000 in full mode)\n"
      "  frames %llu in %.3f s (%.0f frames/s), sample echoes %llu\n",
      sr.clients, quick ? ", --quick" : "", sr.sessions, sr.peak,
      static_cast<unsigned long long>(sr.frames), sr.elapsed,
      static_cast<double>(sr.frames) / sr.elapsed,
      static_cast<unsigned long long>(sr.echoed));
  json.scenario("sessions")
      .field("clients", sr.clients)
      .field("mode", quick ? "quick" : "full")
      .field("sessions_created", sr.sessions)
      .field("peak_sessions", sr.peak)
      .field("frames_received", static_cast<std::size_t>(sr.frames))
      .field("elapsed_seconds", sr.elapsed)
      .field("frames_per_second",
             static_cast<double>(sr.frames) / sr.elapsed)
      .field("backpressure_dropped",
             static_cast<std::size_t>(
                 metrics.counter("runtime.net.backpressure_dropped")))
      .field("decode_errors",
             static_cast<std::size_t>(
                 metrics.counter("runtime.net.decode_error")));
  ok = ok && sr.ok && (quick || sr.sessions >= 1000);

  if (!json.write(out_path)) return 2;
  std::printf("\nE19 gates: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
