// E13 — Live runtime: dispatch throughput and transport latency.
//
// Two questions about the live stack (src/runtime):
//   1. Throughput — how fast does the deterministic virtual-loopback host
//      chew through the §7 agent protocol as n and the epoch count grow?
//      (events/second of the single-threaded dispatch loop, the quantity
//      that bounds what a simulation-scale deployment can replay.)
//   2. Latency — on the wall-clock transports, how long do datagrams dwell
//      in the host mailbox before dispatch ("runtime.ingest_latency_seconds")
//      and does the achieved precision stay within the claimed bound?
//
// Besides the stdout table, writes BENCH_runtime.json (consumed by the CI
// golden job).  Usage: bench_e13_runtime [out.json], default
// ./BENCH_runtime.json.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "runtime/daemon.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;

SystemModel complete_model(std::size_t n, double lb, double ub) {
  SystemModel m{make_complete(n)};
  for (auto [a, b] : m.topology().links)
    m.set_constraint(make_bounds(a, b, lb, ub));
  return m;
}

struct VirtualRow {
  std::size_t n{0};
  std::size_t epochs{0};
  std::size_t dispatched{0};
  double seconds{0.0};
  double events_per_sec{0.0};
  bool all_match{false};
};

VirtualRow run_virtual(std::size_t n, std::size_t epochs) {
  SystemModel model = complete_model(n, 0.001, 0.05);
  LiveConfig config;
  config.seed = 100 + n;
  config.agent.epochs = epochs;

  const auto t0 = std::chrono::steady_clock::now();
  const LiveReport report = run_live(model, config);
  const auto t1 = std::chrono::steady_clock::now();

  VirtualRow row;
  row.n = n;
  row.epochs = epochs;
  row.dispatched = report.dispatched;
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.events_per_sec =
      row.seconds > 0.0 ? static_cast<double>(row.dispatched) / row.seconds
                        : 0.0;
  row.all_match = report.converged && report.all_match;
  return row;
}

struct WallRow {
  std::string transport;
  std::size_t n{0};
  std::size_t dispatched{0};
  std::uint64_t ingest_count{0};
  double ingest_mean_us{0.0};
  double ingest_max_us{0.0};
  bool converged{false};
  bool within_bound{false};
  double claimed{0.0};
  double realized{0.0};
};

WallRow run_wall(LiveTransportKind kind, std::size_t n) {
  // Real delays on localhost are tiny and positive: lower bound 0 keeps
  // the run admissible, so Thm 4.6's within-bound check is meaningful.
  SystemModel model = complete_model(n, 0.0, 1.0);
  LiveConfig config;
  config.seed = 200 + n;
  config.transport = kind;
  config.delay_scale = 0.002;
  config.agent.warmup = Duration{0.05};
  config.agent.spacing = Duration{0.02};
  config.agent.report_at = Duration{0.3};
  config.agent.period = Duration{0.3};
  config.deadline = Duration{20.0};

  const LiveReport report = run_live(model, config);
  WallRow row;
  row.transport = report.transport;
  row.n = n;
  row.dispatched = report.dispatched;
  const MetricSeries ingest =
      report.metrics.series_snapshot("runtime.ingest_latency_seconds");
  row.ingest_count = ingest.count;
  row.ingest_mean_us = ingest.mean() * 1e6;
  row.ingest_max_us = ingest.count > 0 ? ingest.max * 1e6 : 0.0;
  row.converged = report.converged;
  if (!report.epochs.empty() &&
      report.epochs[0].claimed_precision.has_value() &&
      report.epochs[0].realized_precision.has_value()) {
    row.claimed = *report.epochs[0].claimed_precision;
    row.realized = *report.epochs[0].realized_precision;
    row.within_bound = row.realized <= row.claimed;
  }
  return row;
}

int run(const std::string& json_path) {
  print_header("E13", "live runtime: dispatch throughput and latency");

  Table vt({"n", "epochs", "events", "seconds", "events/s", "bit-match"});
  std::ostringstream json;
  json << "{\n  \"experiment\": \"E13_runtime\",\n  \"virtual\": [\n";

  const std::size_t kSizes[] = {8, 16, 32};
  const std::size_t kEpochs[] = {1, 4};
  bool first = true;
  for (const std::size_t n : kSizes) {
    for (const std::size_t epochs : kEpochs) {
      const VirtualRow row = run_virtual(n, epochs);
      vt.add_row({std::to_string(row.n), std::to_string(row.epochs),
                  std::to_string(row.dispatched),
                  Table::num(row.seconds, 3),
                  Table::num(row.events_per_sec, 0),
                  row.all_match ? "yes" : "NO"});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"n\": " << row.n << ", \"epochs\": " << row.epochs
           << ", \"events\": " << row.dispatched
           << ", \"seconds\": " << row.seconds
           << ", \"events_per_sec\": " << row.events_per_sec
           << ", \"all_match\": " << (row.all_match ? "true" : "false")
           << "}";
    }
  }
  json << "\n  ],\n  \"wall\": [\n";
  vt.print(std::cout);

  Table wt({"transport", "n", "events", "ingest n", "ingest mean (us)",
            "ingest max (us)", "claimed (ms)", "realized (ms)", "ok"});
  first = true;
  for (const LiveTransportKind kind :
       {LiveTransportKind::kLoopbackThreaded, LiveTransportKind::kUdp}) {
    for (const std::size_t n : {8, 16}) {
      const WallRow row = run_wall(kind, static_cast<std::size_t>(n));
      wt.add_row({row.transport, std::to_string(row.n),
                  std::to_string(row.dispatched),
                  std::to_string(row.ingest_count),
                  Table::num(row.ingest_mean_us, 1),
                  Table::num(row.ingest_max_us, 1),
                  Table::num(row.claimed * 1e3, 4),
                  Table::num(row.realized * 1e3, 4),
                  row.converged && row.within_bound ? "yes" : "NO"});
      if (!first) json << ",\n";
      first = false;
      json << "    {\"transport\": \"" << row.transport
           << "\", \"n\": " << row.n << ", \"events\": " << row.dispatched
           << ", \"ingest_count\": " << row.ingest_count
           << ", \"ingest_mean_us\": " << row.ingest_mean_us
           << ", \"ingest_max_us\": " << row.ingest_max_us
           << ", \"claimed\": " << row.claimed
           << ", \"realized\": " << row.realized
           << ", \"converged\": " << (row.converged ? "true" : "false")
           << ", \"within_bound\": " << (row.within_bound ? "true" : "false")
           << "}";
    }
  }
  json << "\n  ]\n}\n";
  wt.print(std::cout);

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "E13: cannot write " << json_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(argc > 1 ? argv[1] : "BENCH_runtime.json");
}
