// E4 — Heterogeneous WAN: different assumptions on different links.
//
// Claim exercised (§5, decomposition + locality): the pipeline handles a
// network where every link carries whatever assumption actually holds for
// it — tight bounds on LAN-ish stub links, bias bounds on symmetric
// backbone links, lower-bounds-only on the rest — and still produces
// per-instance-optimal corrections, beating practice-style baselines that
// cannot exploit mixed information.
// Expected shape: optimal <= tree-midpoint <= cristian in guaranteed
// precision (cristian ignores all declared bounds); realized <= guaranteed
// for every algorithm.

#include "support.hpp"

namespace {

cs::SystemModel make_mixed_wan(std::uint64_t seed) {
  using namespace cs;
  Rng rng(seed);
  Topology topo = make_wan(16, 4, rng);
  SystemModel model(std::move(topo));
  std::size_t i = 0;
  for (auto [a, b] : model.topology().links) {
    switch (i++ % 4) {
      case 0:  // LAN-style: tight bounds
        model.set_constraint(make_bounds(a, b, 0.001, 0.004));
        break;
      case 1:  // symmetric backbone: bias bound only
        model.set_constraint(make_bias(a, b, 0.003));
        break;
      case 2:  // known floor, fat tail: lower bound only
        model.set_constraint(make_lower_bound_only(a, b, 0.002));
        break;
      case 3: {  // both bounds and bias
        std::vector<std::unique_ptr<LinkConstraint>> parts;
        parts.push_back(make_bounds(a, b, 0.001, 0.02));
        parts.push_back(make_bias(a, b, 0.005));
        model.set_constraint(make_composite(a, b, std::move(parts)));
        break;
      }
    }
  }
  return model;
}

}  // namespace

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E4", "mixed-assumption WAN (16 nodes, 4 link classes)");

  constexpr int kSeeds = 12;
  Table table({"algorithm", "guaranteed mean (ms)", "guaranteed p90 (ms)",
               "realized mean (ms)"});

  Accumulator g_opt, g_mid, g_cri, r_opt, r_mid, r_cri;
  std::vector<double> gs_opt, gs_mid, gs_cri;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const SystemModel model = make_mixed_wan(static_cast<std::uint64_t>(seed));
    const Instance inst = probe(model, static_cast<std::uint64_t>(seed) * 577,
                                0.2, 6, /*delay_scale=*/0.004);
    const SyncOutcome opt = synchronize(model, inst.views);
    const auto mid = tree_midpoint_corrections(model, inst.views);
    const auto cri = cristian_corrections(model, inst.views);

    const double a = opt.optimal_precision.finite();
    g_opt.add(a * 1e3);
    gs_opt.push_back(a * 1e3);
    g_mid.add(guaranteed(opt, mid) * 1e3);
    gs_mid.push_back(guaranteed(opt, mid) * 1e3);
    g_cri.add(guaranteed(opt, cri) * 1e3);
    gs_cri.push_back(guaranteed(opt, cri) * 1e3);
    r_opt.add(realized_precision(inst.starts, opt.corrections) * 1e3);
    r_mid.add(realized_precision(inst.starts, mid) * 1e3);
    r_cri.add(realized_precision(inst.starts, cri) * 1e3);
  }

  table.add_row({"optimal (SHIFTS)", Table::num(g_opt.mean()),
                 Table::num(percentile(gs_opt, 0.9)),
                 Table::num(r_opt.mean())});
  table.add_row({"tree midpoint", Table::num(g_mid.mean()),
                 Table::num(percentile(gs_mid, 0.9)),
                 Table::num(r_mid.mean())});
  table.add_row({"cristian/NTP-style", Table::num(g_cri.mean()),
                 Table::num(percentile(gs_cri, 0.9)),
                 Table::num(r_cri.mean())});
  table.print(std::cout);
  std::cout << "\nexpected: optimal strictly tightest guaranteed precision; "
               "gap widens vs assumption-blind cristian\n";
  return 0;
}
