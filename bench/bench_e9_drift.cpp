// E9 — Extension experiment: small clock drift (outside the paper's model).
//
// Footnote 1 and §7's open problems: real clocks drift slightly; practice
// copes by re-invoking synchronization periodically.  We quantify both
// halves empirically: (a) how much the algorithm's estimates survive small
// drift during the probe phase itself; (b) how the corrected-clock spread
// grows after synchronization, which dictates the re-sync period needed
// for a target precision.
//
// With per-clock rates in [1-rho, 1+rho], the corrected spread at horizon
// dt after sync grows like ~2*rho*dt on top of the drift-free optimum, so
// keeping precision within eps requires re-syncing about every
// (eps - A^max) / (2 rho) seconds.  Expected shape: the measured spread
// matches the 2*rho*dt envelope; rho = 0 reproduces the paper's model
// exactly.

#include <cmath>

#include "core/epochs.hpp"
#include "support.hpp"

namespace {

using namespace cs;

/// Corrected-clock spread at absolute real time T under drifting clocks:
/// max_{p,q} |(clock_p(T) + x_p) - (clock_q(T) + x_q)|.
double spread_at(double T, const std::vector<RealTime>& starts,
                 const std::vector<double>& rates,
                 const std::vector<double>& x) {
  double worst = 0.0;
  for (std::size_t p = 0; p < starts.size(); ++p)
    for (std::size_t q = p + 1; q < starts.size(); ++q) {
      const double cp = (T - starts[p].sec) * rates[p] + x[p];
      const double cq = (T - starts[q].sec) * rates[q] + x[q];
      worst = std::max(worst, std::fabs(cp - cq));
    }
  return worst;
}

}  // namespace

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E9", "clock drift (extension): spread growth after sync");

  constexpr int kSeeds = 10;
  Table table({"rho", "A^max claim (ms)", "spread @0s", "@1s", "@10s",
               "@100s (ms)", "2*rho*100s (ms)", "estimate failures"});

  for (const double rho : {0.0, 1e-6, 1e-5, 1e-4}) {
    Accumulator claim, s0, s1, s10, s100;
    int failures = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SystemModel model = bounded_model(make_ring(6), 0.002, 0.010);
      Rng rng(static_cast<std::uint64_t>(seed) * 613);
      SimOptions opts;
      opts.start_offsets = random_start_offsets(6, 0.25, rng);
      opts.seed = static_cast<std::uint64_t>(seed);
      opts.clock_rates.clear();
      std::vector<double> rates(6, 1.0);
      for (double& r : rates) r = 1.0 + rng.uniform(-rho, rho);
      if (rho > 0.0) {
        opts.clock_rates = rates;
        opts.check_admissible = false;  // outside the model
      }
      PingPongParams params;
      params.warmup = Duration{0.35};
      const SimResult sim = simulate(model, make_ping_pong(params), opts);
      const auto views = sim.execution.views();
      try {
        const SyncOutcome out = synchronize(model, views);
        claim.add(out.optimal_precision.finite() * 1e3);
        const auto starts = sim.execution.start_times();
        const double t_sync = 1.0;  // just after the probe phase
        s0.add(spread_at(t_sync, starts, rates, out.corrections) * 1e3);
        s1.add(spread_at(t_sync + 1, starts, rates, out.corrections) * 1e3);
        s10.add(spread_at(t_sync + 10, starts, rates, out.corrections) *
                1e3);
        s100.add(spread_at(t_sync + 100, starts, rates, out.corrections) *
                 1e3);
      } catch (const InvalidAssumption&) {
        // Drift distorted the estimated delays beyond the declared
        // bounds; the pipeline correctly refuses.
        ++failures;
      }
    }
    table.add_row({Table::num(rho, 2),
                   claim.count() ? Table::num(claim.mean()) : "-",
                   claim.count() ? Table::num(s0.mean()) : "-",
                   claim.count() ? Table::num(s1.mean()) : "-",
                   claim.count() ? Table::num(s10.mean()) : "-",
                   claim.count() ? Table::num(s100.mean()) : "-",
                   Table::num(2.0 * rho * 100.0 * 1e3),
                   std::to_string(failures)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: rho=0 row flat at the drift-free optimum; "
               "spread growth tracks the 2*rho*dt envelope; re-sync period "
               "for target eps ~ (eps - A^max)/(2 rho)\n";

  // ---- Part 2: the re-synchronization sawtooth (footnote 1 in action).
  // Continuous probing, drift rho = 1e-5, epochs every 10s: corrected
  // spread is evaluated mid-epoch under (a) always using the latest
  // epoch's corrections, (b) freezing the first epoch's corrections.
  print_header("E9b", "periodic re-sync sawtooth (rho = 3e-5, ring of 6)");
  {
    // Looser bounds than part 1: the probe phase spans ~60s, so the
    // drift-induced estimate distortion (~rho * 60s ~ 2ms) must stay
    // well inside the per-link slack or the pipeline rightly rejects.
    constexpr double rho = 3e-5;
    SystemModel model = bounded_model(make_ring(6), 0.002, 0.038);
    Rng rng(404);
    SimOptions opts;
    opts.start_offsets = random_start_offsets(6, 0.25, rng);
    opts.seed = 404;
    std::vector<double> rates(6);
    for (double& r : rates) r = 1.0 + rng.uniform(-rho, rho);
    opts.clock_rates = rates;
    opts.check_admissible = false;

    PingPongParams probing;
    probing.warmup = Duration{0.5};
    probing.spacing = Duration{2.0};
    probing.rounds = 30;  // probes cover the first ~60s
    // Actual delays sit well inside the declared bounds so the drift
    // distortion (<= 2*rho*60s ~ 3.6ms) cannot exhaust the slack.
    std::vector<std::unique_ptr<DelaySampler>> samplers;
    for (std::size_t i = 0; i < model.topology().link_count(); ++i)
      samplers.push_back(make_uniform_sampler(0.010, 0.020, 0.010, 0.020));
    const SimResult sim =
        simulate(model, make_ping_pong(probing), std::move(samplers), opts);
    const auto views = sim.execution.views();
    const auto starts = sim.execution.start_times();

    std::vector<ClockTime> boundaries;
    for (int k = 1; k <= 6; ++k)
      boundaries.push_back(ClockTime{10.0 * k});
    const auto epochs = epochal_synchronize(model, views, boundaries);

    Table saw({"real time (s)", "spread, re-sync (ms)",
               "spread, frozen epoch 1 (ms)"});
    for (int k = 0; k < 6; ++k) {
      const double t = 10.0 * k + 5.0;  // mid-epoch evaluation point
      // Latest boundary at or before t (epoch k-1 for t in epoch k).
      const auto& fresh =
          epochs[static_cast<std::size_t>(std::max(0, k - 1))].sync;
      const auto& frozen = epochs[0].sync;
      saw.add_row({Table::num(t),
                   Table::num(spread_at(t, starts, rates,
                                        fresh.corrections) *
                              1e3),
                   Table::num(spread_at(t, starts, rates,
                                        frozen.corrections) *
                              1e3)});
    }
    saw.print(std::cout);
    std::cout << "\nexpected: frozen column grows ~2*rho*t; re-sync column "
                 "stays near the per-epoch optimum\n";
  }
  return 0;
}
