// E5 — Optimal pipeline vs classical baselines across delay distributions.
//
// Claim exercised: per-instance optimality (Thm 4.6) dominates every
// baseline's guaranteed precision on every instance — Cristian/NTP-style
// midpoints, spanning-tree midpoints, Lundelius-Lynch averaging, and the
// Halpern-Megiddo-Munshi one-shot special case.  The margin depends on the
// delay distribution: favorable draws (fast messages actually observed)
// help the adaptive pipeline most.
// Expected shape: optimal column smallest everywhere; LL close to optimal
// on complete graphs (it is worst-case optimal there); HMM worst among the
// bounds-aware ones with multi-probe traffic; wins counted for optimal
// must be all seeds.

#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E5", "baseline comparison, complete graph of 6");

  constexpr double kLb = 0.002, kUb = 0.012;
  constexpr int kSeeds = 15;

  struct Dist {
    std::string name;
    std::function<std::unique_ptr<DelaySampler>()> make;
  };
  const std::vector<Dist> dists{
      {"uniform",
       [] { return make_uniform_sampler(kLb, kUb, kLb, kUb); }},
      {"exp-trunc",
       [] { return make_shifted_exponential_sampler(kLb, 0.003, kUb); }},
      {"pareto-trunc",
       [] { return make_shifted_pareto_sampler(kLb, 0.001, 1.3, kUb); }},
  };

  Table table({"distribution", "optimal (ms)", "LL (ms)", "tree-mid (ms)",
               "cristian (ms)", "HMM 1-shot (ms)", "optimal wins"});

  for (const Dist& dist : dists) {
    Accumulator opt_a, ll_a, mid_a, cri_a, hmm_a;
    int wins = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      SystemModel model = bounded_model(make_complete(6), kLb, kUb);
      std::vector<std::unique_ptr<DelaySampler>> samplers;
      for (std::size_t i = 0; i < model.topology().link_count(); ++i)
        samplers.push_back(dist.make());
      Rng rng(static_cast<std::uint64_t>(seed) * 271);
      SimOptions opts;
      opts.start_offsets = random_start_offsets(6, 0.25, rng);
      opts.seed = static_cast<std::uint64_t>(seed);
      PingPongParams params;
      params.warmup = Duration{0.35};
      const SimResult sim = simulate(model, make_ping_pong(params),
                                     std::move(samplers), opts);
      const auto views = sim.execution.views();
      const SyncOutcome opt = synchronize(model, views);
      const double a = opt.optimal_precision.finite();

      const double ll =
          guaranteed(opt, lundelius_lynch_corrections(model, views));
      const double mid =
          guaranteed(opt, tree_midpoint_corrections(model, views));
      const double cri = guaranteed(opt, cristian_corrections(model, views));
      const double hm = guaranteed(opt, hmm_one_shot(model, views).corrections);

      opt_a.add(a * 1e3);
      ll_a.add(ll * 1e3);
      mid_a.add(mid * 1e3);
      cri_a.add(cri * 1e3);
      hmm_a.add(hm * 1e3);
      if (a <= ll + 1e-12 && a <= mid + 1e-12 && a <= cri + 1e-12 &&
          a <= hm + 1e-12)
        ++wins;
    }
    table.add_row({dist.name, Table::num(opt_a.mean()),
                   Table::num(ll_a.mean()), Table::num(mid_a.mean()),
                   Table::num(cri_a.mean()), Table::num(hmm_a.mean()),
                   std::to_string(wins) + "/" + std::to_string(kSeeds)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: optimal wins 15/15 in every row (Thm 4.4)\n";
  return 0;
}
