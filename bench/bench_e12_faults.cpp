// E12 — Synchronization under fault injection: precision vs message loss,
// and what staleness carry-forward buys back.
//
// Claim exercised: omission faults never break soundness — they only starve
// the estimators.  As the per-link drop probability rises, sliding-window
// epochs start seeing directions with zero observations and degrade to
// per-component guarantees; carry-forward with staleness widening keeps the
// instance bounded through short outages at the cost of a (reported,
// widened) precision.  Expected shape: the bounded-epoch fraction of the
// no-carry arm falls off with loss while the carry arm stays near 1, with a
// modest precision premium; coverage tracks (1 - loss) closely.
//
// Output: stdout table, one row per (loss, arm).

#include "core/epochs.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;

struct ArmOutcome {
  double coverage{0.0};        ///< mean observed-direction fraction
  double bounded_fraction{0.0};
  double mean_precision{0.0};  ///< over bounded epochs
  std::size_t carried{0};
  std::size_t dropped{0};
};

ArmOutcome run_arm(const SystemModel& model, double loss, bool carry,
                   std::uint64_t seed) {
  FaultPlan plan;
  plan.default_link.drop_probability = loss;

  SimOptions opts;
  opts.start_offsets.assign(model.processor_count(), Duration{0.0});
  opts.seed = seed;
  opts.faults = &plan;

  // Sparse probing (a few beacons per window per direction): at high loss,
  // link directions genuinely starve within a window.
  BeaconParams params;
  params.warmup = Duration{0.1};
  params.period = Duration{0.15};
  params.count = 27;  // beacons through clock time ~4.0
  const SimResult sim = simulate(model, make_beacon(params), opts);
  const auto views = sim.execution.views();

  std::vector<ClockTime> boundaries;
  for (double t = 1.0; t <= 4.0; t += 0.5) boundaries.push_back(ClockTime{t});

  EpochOptions epoch_opts;
  epoch_opts.window = Duration{0.45};
  epoch_opts.staleness.carry_forward = carry;
  epoch_opts.staleness.widen_per_epoch = 0.005;
  epoch_opts.staleness.max_carry_epochs = 4;

  ArmOutcome out;
  out.dropped = sim.fault_dropped_messages;
  std::size_t bounded = 0;
  for (const EpochOutcome& ep :
       epochal_synchronize_incremental(model, views, boundaries,
                                       epoch_opts)) {
    out.coverage += ep.coverage.fraction();
    out.carried += ep.carried_edges;
    if (ep.sync.bounded()) {
      ++bounded;
      out.mean_precision += ep.sync.optimal_precision.finite();
    }
  }
  out.coverage /= static_cast<double>(boundaries.size());
  out.bounded_fraction =
      static_cast<double>(bounded) / static_cast<double>(boundaries.size());
  if (bounded > 0) out.mean_precision /= static_cast<double>(bounded);
  return out;
}

int run() {
  print_header("E12", "degraded-mode synchronization under message loss");

  const SystemModel model = bounded_model(make_ring(8), 0.005, 0.02);
  Table table({"loss", "arm", "dropped", "coverage", "bounded_epochs",
               "mean_precision", "carried_edges"});

  for (const double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    for (const bool carry : {false, true}) {
      const ArmOutcome arm = run_arm(model, loss, carry, 1201);
      table.add_row({Table::num(loss, 2), carry ? "carry" : "no_carry",
                     std::to_string(arm.dropped),
                     Table::num(arm.coverage, 3),
                     Table::num(arm.bounded_fraction, 3),
                     Table::num(arm.mean_precision, 5),
                     std::to_string(arm.carried)});
    }
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main() { return run(); }
