// E12 — Synchronization under fault injection: precision vs message loss,
// and what staleness carry-forward buys back.
//
// Claim exercised: omission faults never break soundness — they only starve
// the estimators.  As the per-link drop probability rises, sliding-window
// epochs start seeing directions with zero observations and degrade to
// per-component guarantees; carry-forward with staleness widening keeps the
// instance bounded through short outages at the cost of a (reported,
// widened) precision.  Expected shape: the bounded-epoch fraction of the
// no-carry arm falls off with loss while the carry arm stays near 1, with a
// modest precision premium; coverage tracks (1 - loss) closely.
//
// Sweep plumbing: the (loss × arm × seed) grid is expanded like a lab
// campaign cell grid and fanned out over the cs_lab work-stealing pool.
// Each task's randomness is keyed by lab::derive_task_seed(master, index),
// so the aggregated rows are byte-identical for every thread count.
//
// Output: stdout table (one row per (loss, arm) cell, averaged over the
// seed range) plus BENCH_lab.json in the standard bench-JSON shape.

#include "core/epochs.hpp"
#include "lab/campaign.hpp"
#include "lab/pool.hpp"
#include "proto/beacon.hpp"
#include "sim/fault_plan.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;

constexpr std::uint64_t kMasterSeed = 1201;
constexpr std::size_t kSeedsPerCell = 4;
const std::vector<double> kLosses{0.0, 0.2, 0.4, 0.6, 0.8};

struct ArmOutcome {
  double coverage{0.0};        ///< mean observed-direction fraction
  double bounded_fraction{0.0};
  double mean_precision{0.0};  ///< over bounded epochs
  std::size_t carried{0};
  std::size_t dropped{0};
};

ArmOutcome run_arm(const SystemModel& model, double loss, bool carry,
                   std::uint64_t seed) {
  FaultPlan plan;
  plan.default_link.drop_probability = loss;

  SimOptions opts;
  opts.start_offsets.assign(model.processor_count(), Duration{0.0});
  opts.seed = seed;
  opts.faults = &plan;

  // Sparse probing (a few beacons per window per direction): at high loss,
  // link directions genuinely starve within a window.
  BeaconParams params;
  params.warmup = Duration{0.1};
  params.period = Duration{0.15};
  params.count = 27;  // beacons through clock time ~4.0
  const SimResult sim = simulate(model, make_beacon(params), opts);
  const auto views = sim.execution.views();

  std::vector<ClockTime> boundaries;
  for (double t = 1.0; t <= 4.0; t += 0.5) boundaries.push_back(ClockTime{t});

  EpochOptions epoch_opts;
  epoch_opts.window = Duration{0.45};
  epoch_opts.staleness.carry_forward = carry;
  epoch_opts.staleness.widen_per_epoch = 0.005;
  epoch_opts.staleness.max_carry_epochs = 4;

  ArmOutcome out;
  out.dropped = sim.fault_dropped_messages;
  std::size_t bounded = 0;
  for (const EpochOutcome& ep :
       epochal_synchronize_incremental(model, views, boundaries,
                                       epoch_opts)) {
    out.coverage += ep.coverage.fraction();
    out.carried += ep.carried_edges;
    if (ep.sync.bounded()) {
      ++bounded;
      out.mean_precision += ep.sync.optimal_precision.finite();
    }
  }
  out.coverage /= static_cast<double>(boundaries.size());
  out.bounded_fraction =
      static_cast<double>(bounded) / static_cast<double>(boundaries.size());
  if (bounded > 0) out.mean_precision /= static_cast<double>(bounded);
  return out;
}

int run(const std::string& json_path) {
  print_header("E12", "degraded-mode synchronization under message loss");

  const SystemModel model = bounded_model(make_ring(8), 0.005, 0.02);

  // Cell grid in odometer order (loss-major, then arm, then seed), exactly
  // like lab::expand; results land in index-keyed slots.
  const std::size_t cells = kLosses.size() * 2;
  const std::size_t task_count = cells * kSeedsPerCell;
  std::vector<ArmOutcome> results(task_count);

  Metrics metrics;
  lab::PoolOptions pool;
  pool.metrics = &metrics;
  lab::run_indexed(
      task_count,
      [&](std::size_t i) {
        const std::size_t cell = i / kSeedsPerCell;
        const double loss = kLosses[cell / 2];
        const bool carry = (cell % 2) != 0;
        results[i] =
            run_arm(model, loss, carry, lab::derive_task_seed(kMasterSeed, i));
      },
      pool);

  Table table({"loss", "arm", "seeds", "dropped", "coverage",
               "bounded_epochs", "mean_precision", "carried_edges"});
  BenchJson json("lab");

  for (std::size_t cell = 0; cell < cells; ++cell) {
    const double loss = kLosses[cell / 2];
    const bool carry = (cell % 2) != 0;
    ArmOutcome mean;
    std::size_t with_bounded = 0;
    for (std::size_t s = 0; s < kSeedsPerCell; ++s) {
      const ArmOutcome& arm = results[cell * kSeedsPerCell + s];
      mean.coverage += arm.coverage;
      mean.bounded_fraction += arm.bounded_fraction;
      mean.dropped += arm.dropped;
      mean.carried += arm.carried;
      if (arm.bounded_fraction > 0.0) {
        mean.mean_precision += arm.mean_precision;
        ++with_bounded;
      }
    }
    mean.coverage /= static_cast<double>(kSeedsPerCell);
    mean.bounded_fraction /= static_cast<double>(kSeedsPerCell);
    if (with_bounded > 0)
      mean.mean_precision /= static_cast<double>(with_bounded);

    const std::string arm_name = carry ? "carry" : "no_carry";
    table.add_row({Table::num(loss, 2), arm_name,
                   std::to_string(kSeedsPerCell),
                   std::to_string(mean.dropped), Table::num(mean.coverage, 3),
                   Table::num(mean.bounded_fraction, 3),
                   Table::num(mean.mean_precision, 5),
                   std::to_string(mean.carried)});

    json.scenario("loss" + Table::num(loss, 1) + "_" + arm_name)
        .field("loss", loss)
        .field("arm", arm_name)
        .field("seeds", kSeedsPerCell)
        .field("dropped", mean.dropped)
        .field("coverage_mean", mean.coverage)
        .field("bounded_fraction_mean", mean.bounded_fraction)
        .field("mean_precision", mean.mean_precision)
        .field("carried_edges", mean.carried);
  }
  table.print(std::cout);
  std::cout << "pool: " << metrics.counter("lab.pool.threads")
            << " workers, " << metrics.counter("lab.pool.steals")
            << " steals\n";
  return json.write(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return run(argc > 1 ? argv[1] : "BENCH_lab.json");
}
