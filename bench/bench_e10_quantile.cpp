// E10 — Extension experiment: probabilistic delays via quantile
// pseudo-bounds (§7 open question).
//
// When only the delay *distribution* is known, a pragmatic bridge to this
// library is to declare [lb, Q_q] as bounds, where Q_q is the q-quantile
// of the distribution: tighter declared bounds buy precision, but with
// probability ~1-(1-q)^M some message exceeds Q_q and the declared
// assumption is false — the pipeline then either rejects the views
// (negative m̃ls cycle) or silently reports a guarantee that an adversary
// could beat.  The experiment quantifies that trade-off, which is exactly
// the tension the paper's open question points at.
//
// Expected shape: precision improves as q decreases; rejection/violation
// rate grows; q = 1 (true bound, here the distribution is truncated so it
// exists) is always sound.

#include <cmath>

#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E10", "quantile pseudo-bounds under exponential delays");

  constexpr double kLb = 0.002;
  constexpr double kMean = 0.004;   // excess over lb
  constexpr double kTrunc = 0.050;  // physical hard cap (truncated exp)
  constexpr int kSeeds = 40;

  Table table({"quantile", "declared ub (ms)", "violated", "rejected",
               "A^max mean (ms)", "unsound instances"});

  for (const double q : {0.50, 0.90, 0.99, 0.999, 1.0}) {
    // Q_q of lb + Exp(mean) truncated at kTrunc.
    const double ub_q =
        (q >= 1.0) ? kTrunc
                   : std::min(kTrunc, kLb - kMean * std::log1p(-q));
    Accumulator a_acc;
    int violated = 0, rejected = 0, unsound = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      // Declared model: [lb, ub_q].  True traffic: truncated exponential,
      // which can exceed ub_q when q < 1.
      SystemModel declared = bounded_model(make_ring(6), kLb, ub_q);
      std::vector<std::unique_ptr<DelaySampler>> samplers;
      for (std::size_t i = 0; i < declared.topology().link_count(); ++i)
        samplers.push_back(
            make_shifted_exponential_sampler(kLb, kMean, kTrunc));
      Rng rng(static_cast<std::uint64_t>(seed) * 947);
      SimOptions opts;
      opts.start_offsets = random_start_offsets(6, 0.25, rng);
      opts.seed = static_cast<std::uint64_t>(seed);
      opts.check_admissible = false;  // assumptions may be (knowingly) false
      PingPongParams params;
      params.warmup = Duration{0.35};
      const SimResult sim = simulate(declared, make_ping_pong(params),
                                     std::move(samplers), opts);

      const bool is_violated = !declared.admissible(sim.execution);
      violated += is_violated;
      const auto views = sim.execution.views();
      try {
        const SyncOutcome out = synchronize(declared, views);
        a_acc.add(out.optimal_precision.finite() * 1e3);
        const double realized =
            realized_precision(sim.execution.start_times(),
                               out.corrections);
        if (realized > out.optimal_precision.finite() + 1e-9) ++unsound;
      } catch (const InvalidAssumption&) {
        ++rejected;  // pipeline detected the contradiction itself
      }
    }
    table.add_row(
        {Table::num(q, 4), Table::num(ub_q * 1e3),
         std::to_string(violated) + "/" + std::to_string(kSeeds),
         std::to_string(rejected) + "/" + std::to_string(kSeeds),
         a_acc.count() ? Table::num(a_acc.mean()) : "-",
         std::to_string(unsound)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: tighter quantiles -> better precision but more "
               "violations/rejections; q = 1 sound with 0 violations\n";
  return 0;
}
