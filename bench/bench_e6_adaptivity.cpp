// E6 — Per-instance adaptivity: the distribution of achievable precision.
//
// Claim exercised (§3's new optimality notion): a worst-case-optimal
// algorithm is characterized by a single number; the per-instance-optimal
// pipeline achieves a *distribution* of precisions, exploiting favorable
// delay draws.  We sample many instances of one system and report the
// spread of Ã^max against the fixed worst-case bound of the system (the
// precision any worst-case-optimal algorithm must be content with).
//
// For a ring with per-link uncertainty u, the worst-case-optimal precision
// is governed by the worst instance: A^max -> n/4 * u-ish on rings as
// observed delays approach the bound edges; favorable instances do far
// better.  Expected shape: p10 << p90 < worst observed ~ worst case;
// mean well below the worst case — the adaptivity dividend.

#include "support.hpp"

int main() {
  using namespace cs;
  using namespace cs::bench;

  print_header("E6", "distribution of per-instance optimal precision");

  constexpr double kLb = 0.002, kUb = 0.010;
  constexpr int kInstances = 400;

  for (const std::string topo_name : {"ring", "complete"}) {
    std::vector<double> a_ms;
    Accumulator acc;
    for (int seed = 1; seed <= kInstances; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed));
      SystemModel model =
          bounded_model(make_named(topo_name, 6, rng), kLb, kUb);
      const Instance inst =
          probe(model, static_cast<std::uint64_t>(seed) * 907, 0.2, 2);
      const SyncOutcome out = synchronize(model, inst.views);
      const double a = out.optimal_precision.finite() * 1e3;
      a_ms.push_back(a);
      acc.add(a);
    }
    Table table({"topology", "p10 (ms)", "p50 (ms)", "p90 (ms)",
                 "max (ms)", "mean (ms)"});
    table.add_row({topo_name, Table::num(percentile(a_ms, 0.1)),
                   Table::num(percentile(a_ms, 0.5)),
                   Table::num(percentile(a_ms, 0.9)),
                   Table::num(acc.max()), Table::num(acc.mean())});
    table.print(std::cout);

    Histogram hist(0.0, percentile(a_ms, 1.0) * 1.02, 12);
    for (double a : a_ms) hist.add(a);
    std::cout << "A^max histogram (" << topo_name << ", ms):\n";
    for (const std::string& line : hist.render(36))
      std::cout << "  " << line << '\n';
  }
  std::cout << "\nexpected: wide spread (p10 well below max) — the value of "
               "per-instance optimality over worst-case optimality\n";
  return 0;
}
