// E8 — Design-choice ablations.
//
// (a) Cycle mean: Karp's exact O(nm) algorithm (the paper's choice) vs a
//     Lawler-style binary search on negative-cycle detection.  Expected:
//     both agree to tolerance; Karp is faster and exact.
// (b) APSP for GLOBAL ESTIMATES: Johnson vs Floyd-Warshall.  Expected:
//     identical matrices; Johnson wins on sparse network graphs, loses or
//     ties on dense ones.
// (c) Probe cost vs precision (the §7 message-traffic consideration): how
//     much precision each extra probe round buys, and at what message
//     cost.  Expected: diminishing returns — steep improvement for the
//     first few rounds, then a plateau governed by lb-edge proximity.

#include <chrono>
#include <cmath>

#include "support.hpp"

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double time_us(F&& f, int reps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) f();
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

}  // namespace

int main() {
  using namespace cs;
  using namespace cs::bench;

  // ---- (a) Karp vs binary-search cycle mean ------------------------------
  print_header("E8a", "cycle mean: Karp vs Howard vs binary search");
  {
    Table table({"n", "Karp (us)", "Howard (us)", "bsearch (us)",
                 "max |Karp-Howard|", "max |Karp-bsearch|"});
    for (const std::size_t n : {8u, 16u, 32u, 64u}) {
      Rng rng(n);
      Digraph g(n);
      for (NodeId p = 0; p < n; ++p)
        for (NodeId q = 0; q < n; ++q)
          if (p != q) g.add_edge(p, q, rng.uniform(-1.0, 1.0));
      const double karp_us =
          time_us([&] { (void)max_cycle_mean_karp(g); }, 20);
      const double how_us =
          time_us([&] { (void)max_cycle_mean_howard(g); }, 20);
      const double bs_us =
          time_us([&] { (void)max_cycle_mean_bsearch(g, 1e-9); }, 5);
      const double karp = *max_cycle_mean_karp(g);
      const double diff_h = std::fabs(karp - *max_cycle_mean_howard(g));
      const double diff_b =
          std::fabs(karp - *max_cycle_mean_bsearch(g, 1e-9));
      table.add_row({std::to_string(n), Table::num(karp_us),
                     Table::num(how_us), Table::num(bs_us),
                     Table::num(diff_h, 2), Table::num(diff_b, 2)});
    }
    table.print(std::cout);
  }

  // ---- (b) Johnson vs Floyd-Warshall -------------------------------------
  print_header("E8b", "GLOBAL ESTIMATES APSP: Johnson vs Floyd-Warshall");
  {
    Table table({"graph", "Johnson (us)", "Floyd-Warshall (us)",
                 "matrices equal"});
    struct Case {
      std::string name;
      Digraph g;
    };
    std::vector<Case> cases;
    {
      Rng rng(3);
      Digraph ring(96);
      for (NodeId v = 0; v < 96; ++v) {
        ring.add_edge(v, (v + 1) % 96, rng.uniform(0.0, 1.0));
        ring.add_edge((v + 1) % 96, v, rng.uniform(0.0, 1.0));
      }
      cases.push_back({"ring n=96 (sparse)", std::move(ring)});
      Digraph dense(48);
      for (NodeId p = 0; p < 48; ++p)
        for (NodeId q = 0; q < 48; ++q)
          if (p != q) dense.add_edge(p, q, rng.uniform(0.0, 1.0));
      cases.push_back({"complete n=48 (dense)", std::move(dense)});
    }
    for (const Case& c : cases) {
      const double j_us = time_us([&] { (void)johnson(c.g); }, 5);
      const double f_us = time_us([&] { (void)floyd_warshall(c.g); }, 5);
      const auto a = johnson(c.g);
      const auto b = floyd_warshall(c.g);
      double max_diff = 0.0;
      for (std::size_t i = 0; i < a->size(); ++i)
        for (std::size_t k = 0; k < a->size(); ++k)
          max_diff =
              std::max(max_diff, std::fabs(a->at(i, k) - b->at(i, k)));
      table.add_row({c.name, Table::num(j_us), Table::num(f_us),
                     max_diff < 1e-9 ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  // ---- (c) probe rounds vs precision vs message cost ---------------------
  print_header("E8c", "probe cost vs precision (ring of 8, bounds model)");
  {
    Table table({"rounds", "messages", "A^max mean (ms)",
                 "improvement vs 1 round"});
    constexpr int kSeeds = 12;
    double base = 0.0;
    for (const std::size_t rounds : {1u, 2u, 4u, 8u, 16u}) {
      Accumulator a_acc;
      std::size_t messages = 0;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        SystemModel model = bounded_model(make_ring(8), 0.002, 0.012);
        const Instance inst =
            probe(model, static_cast<std::uint64_t>(seed) * 41, 0.2, rounds);
        messages = inst.sim.delivered_messages;
        a_acc.add(
            synchronize(model, inst.views).optimal_precision.finite() * 1e3);
      }
      if (rounds == 1) base = a_acc.mean();
      table.add_row({std::to_string(rounds), std::to_string(messages),
                     Table::num(a_acc.mean()),
                     Table::num(base / a_acc.mean(), 3) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nexpected: diminishing returns per extra probe round\n";
  }
  return 0;
}
