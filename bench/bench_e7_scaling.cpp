// E7 — Scaling microbenchmarks (google-benchmark).
//
// Claim exercised: the pipeline is the paper's advertised complexity —
// Karp's cycle mean O(nm) = O(n^3) on complete shift graphs, Bellman-Ford
// corrections O(n^3), Johnson APSP O(nm + n^2 log n) on sparse network
// graphs — and the end-to-end correction computation for a 64-processor
// system stays comfortably interactive.
// Expected shape: Karp ~8x per doubling of n (cubic); Johnson much flatter
// than Floyd-Warshall on rings; synchronize() dominated by Karp at scale.

#include <benchmark/benchmark.h>

#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;

/// Random complete m̃s-like matrix: potentials + non-negative noise, so
/// no negative 2-cycles and realistic structure.
DistanceMatrix random_ms(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s(n);
  for (auto& x : s) x = rng.uniform(0.0, 0.3);
  DistanceMatrix m(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q) m.at(p, q) = s[p] - s[q] + rng.uniform(0.001, 0.05);
  return m;
}

Digraph matrix_graph(const DistanceMatrix& m) {
  Digraph g(m.size());
  for (std::size_t p = 0; p < m.size(); ++p)
    for (std::size_t q = 0; q < m.size(); ++q)
      if (p != q) g.add_edge(static_cast<NodeId>(p),
                             static_cast<NodeId>(q), m.at(p, q));
  return g;
}

void BM_KarpMaxCycleMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Digraph g = matrix_graph(random_ms(n, 42));
  for (auto _ : state)
    benchmark::DoNotOptimize(max_cycle_mean_karp(g));
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_KarpMaxCycleMean)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oNCubed);

void BM_ShiftsCorrections(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix ms = random_ms(n, 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_shifts(ms));
}
BENCHMARK(BM_ShiftsCorrections)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_JohnsonOnRing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.0, 1.0));
    g.add_edge(static_cast<NodeId>((v + 1) % n), v, rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(johnson(g));
}
BENCHMARK(BM_JohnsonOnRing)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_FloydWarshallOnRing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.0, 1.0));
    g.add_edge(static_cast<NodeId>((v + 1) % n), v, rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(floyd_warshall(g));
}
BENCHMARK(BM_FloydWarshallOnRing)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_EndToEndSynchronize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  SystemModel model = bounded_model(make_connected_gnp(n, 0.3, rng), 0.002,
                                    0.010);
  const Instance inst = probe(model, 99, 0.2, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(synchronize(model, inst.views));
}
BENCHMARK(BM_EndToEndSynchronize)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_SimulatorPingPong(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  SystemModel model = bounded_model(make_ring(n), 0.002, 0.010);
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe(model, 5, 0.2, 4));
  }
}
BENCHMARK(BM_SimulatorPingPong)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
