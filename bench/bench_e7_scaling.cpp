// E7 — Scaling microbenchmarks (google-benchmark) plus an end-to-end
// campaign sweep on the cs_lab executor.
//
// Claim exercised: the pipeline is the paper's advertised complexity —
// Karp's cycle mean O(nm) = O(n^3) on complete shift graphs, Bellman-Ford
// corrections O(n^3), Johnson APSP O(nm + n^2 log n) on sparse network
// graphs — and the end-to-end correction computation for a 64-processor
// system stays comfortably interactive.
// Expected shape: Karp ~8x per doubling of n (cubic); Johnson much flatter
// than Floyd-Warshall on rings; synchronize() dominated by Karp at scale.
//
// The former hand-rolled BM_EndToEndSynchronize / BM_SimulatorPingPong
// loops are replaced by a lab campaign (simulate + synchronize + validate
// per task, fanned out over the work-stealing pool), reported per topology
// scale in BENCH_lab_scaling.json (standard bench-JSON shape).

#include <benchmark/benchmark.h>

#include "lab/campaign.hpp"
#include "lab/stats.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;

/// Random complete m̃s-like matrix: potentials + non-negative noise, so
/// no negative 2-cycles and realistic structure.
DistanceMatrix random_ms(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> s(n);
  for (auto& x : s) x = rng.uniform(0.0, 0.3);
  DistanceMatrix m(n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t q = 0; q < n; ++q)
      if (p != q) m.at(p, q) = s[p] - s[q] + rng.uniform(0.001, 0.05);
  return m;
}

Digraph matrix_graph(const DistanceMatrix& m) {
  Digraph g(m.size());
  for (std::size_t p = 0; p < m.size(); ++p)
    for (std::size_t q = 0; q < m.size(); ++q)
      if (p != q) g.add_edge(static_cast<NodeId>(p),
                             static_cast<NodeId>(q), m.at(p, q));
  return g;
}

void BM_KarpMaxCycleMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Digraph g = matrix_graph(random_ms(n, 42));
  for (auto _ : state)
    benchmark::DoNotOptimize(max_cycle_mean_karp(g));
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_KarpMaxCycleMean)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oNCubed);

void BM_ShiftsCorrections(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix ms = random_ms(n, 43);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_shifts(ms));
}
BENCHMARK(BM_ShiftsCorrections)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_JohnsonOnRing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.0, 1.0));
    g.add_edge(static_cast<NodeId>((v + 1) % n), v, rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(johnson(g));
}
BENCHMARK(BM_JohnsonOnRing)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_FloydWarshallOnRing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Digraph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n), rng.uniform(0.0, 1.0));
    g.add_edge(static_cast<NodeId>((v + 1) % n), v, rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) benchmark::DoNotOptimize(floyd_warshall(g));
}
BENCHMARK(BM_FloydWarshallOnRing)->RangeMultiplier(2)->Range(16, 128)
    ->Unit(benchmark::kMicrosecond);

/// End-to-end scaling through the campaign engine: one cell per topology
/// scale, each task a full simulate + synchronize + Thm 4.6 validation.
/// Replaces the old per-bench sweep glue (BM_EndToEndSynchronize and
/// BM_SimulatorPingPong) with the shared lab executor.
int run_lab_scaling(const std::string& json_path) {
  print_header("E7", "end-to-end scaling on the lab campaign engine");

  lab::CampaignSpec spec;
  spec.name = "e7_scaling";
  spec.seed = 1107;
  spec.seeds_per_cell = 6;
  spec.protocol.kind = "pingpong";
  spec.protocol.rounds = 2;
  spec.skew = 0.2;
  for (const char* text :
       {"ring 8", "ring 16", "ring 32", "ring 64", "er 32 0.3",
        "toroid 5x5"})
    spec.topologies.push_back(lab::parse_topo_spec(text));
  lab::MixSpec mix;
  mix.kind = "bounds";
  mix.lb = 0.002;
  mix.ub = 0.010;
  spec.mixes.push_back(mix);
  spec.faults.push_back(lab::FaultSpec{});  // fault-free

  Metrics metrics;
  lab::RunOptions options;
  options.metrics = &metrics;
  const lab::CampaignResult result = lab::run_campaign(spec, options);
  const lab::CampaignReport report = lab::aggregate(result);

  // Per-cell CPU seconds come from the per-task wall clocks (cells run
  // concurrently, so the campaign wall time alone cannot attribute cost).
  std::vector<double> cell_seconds(report.cells.size(), 0.0);
  for (std::size_t i = 0; i < result.results.size(); ++i)
    cell_seconds[result.tasks[i].cell_id(spec)] += result.results[i].seconds;

  Table table({"topology", "nodes", "tasks", "events", "cpu_s", "events_per_s",
               "claimed_mean", "thm46_max_gap"});
  BenchJson json("lab_scaling");
  for (const lab::CellStats& cell : report.cells) {
    const double seconds = cell_seconds[cell.cell];
    const double events_per_s =
        seconds > 0.0 ? static_cast<double>(cell.events) / seconds : 0.0;
    table.add_row({cell.topology, std::to_string(cell.nodes),
                   std::to_string(cell.tasks), std::to_string(cell.events),
                   Table::num(seconds, 4), Table::num(events_per_s, 0),
                   Table::num(cell.claimed.acc.mean(), 6),
                   Table::num(cell.thm46_max_gap, 12)});
    json.scenario(cell.topology)
        .field("nodes", cell.nodes)
        .field("tasks", cell.tasks)
        .field("events", cell.events)
        .field("cpu_seconds", seconds)
        .field("events_per_second", events_per_s)
        .field("claimed_precision_mean", cell.claimed.acc.mean())
        .field("thm46_max_gap", cell.thm46_max_gap)
        .field("failures", cell.failures)
        .field("soundness_violations", cell.soundness_violations);
  }
  table.print(std::cout);
  std::cout << "pool: " << metrics.counter("lab.pool.threads")
            << " workers, " << metrics.counter("lab.pool.steals")
            << " steals\n";

  if (!lab::report_ok(report)) {
    std::cerr << "E7: lab campaign failed validation\n";
    return 1;
  }
  return json.write(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Any non-benchmark argument left over names the JSON output path.
  return run_lab_scaling(argc > 1 ? argv[1] : "BENCH_lab_scaling.json");
}
