// E18 — Byzantine adversaries: lying agents vs estimator hardening, as
// f x estimator x topology, plus recovery after a bounded attack.
//
// Claims exercised (docs/BYZ.md):
//   * f = 0 honesty tax is zero: every robust variant is bit-clean on
//     honest runs — no detections, no violations, Thm 4.6 equality holds.
//   * The naive pipeline is breakable: somewhere in the f >= 1 sweep a
//     sign-coordinated equivocation slips inside the detection threshold
//     and the published bound is measurably exceeded on the honest
//     subgraph — the run requires at least one such silent violation.
//   * Quorum validation closes the silent window: every quorum arm with
//     f < n/3 stays sound (violations == 0) — detection outages are
//     permitted (loud, nobody misled), silence is not.
//   * Recovery is finite: when the attack's active window ends before the
//     horizon, sliding-window estimation sheds the poisoned observations
//     in a measured number of epochs; a staleness carry stretches (but
//     does not unbound) that count.
//   * Churn composes: link down-windows darken the view census without
//     perturbing the adversary's random streams.
//
// Usage: bench_e18_byz [--quick] [out.json]   (default ./BENCH_byz.json)
// --quick drops the circulant topology and halves the arm grid for CI
// smoke; the committed artifact is the full run.

#include <chrono>

#include "byz/harness.hpp"
#include "support.hpp"

namespace {

using namespace cs;
using namespace cs::bench;
using namespace cs::byz;
using SteadyClock = std::chrono::steady_clock;

constexpr double kLb = 0.001;
constexpr double kUb = 0.101;

struct TopoArm {
  std::string name;
  Topology topo;
  double magnitude;       ///< calibrated to the silent-violation window
  std::uint64_t sim_seed;
  std::uint64_t offset_seed;
};

struct EstArm {
  std::string name;  ///< "naive" | "trimmed" | "quorum"
  RobustOptions robust;
};

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::vector<Duration> offsets(std::size_t n, double skew,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Duration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Duration{skew * rng.uniform01()});
  return out;
}

ByzTrialConfig base_config(const TopoArm& t, std::size_t n) {
  ByzTrialConfig config;
  config.horizon = 32.0;
  config.interval = 8.0;
  config.skew = 0.25;
  // Middle-quarter sampling leaves per-edge slack on honest links, so
  // sub-threshold lies are *possible* — the regime worth measuring.
  config.sample_lo = kLb + 0.375 * (kUb - kLb);
  config.sample_hi = kLb + 0.625 * (kUb - kLb);
  config.sim_seed = t.sim_seed;
  config.start_offsets = offsets(n, config.skew, t.offset_seed);
  return config;
}

int run(bool quick, const std::string& json_path) {
  print_header("E18", "byzantine: f x estimator x topology, plus recovery");

  // Magnitudes sit in the calibrated silent-violation band: large enough
  // to matter, small enough that coordinated equivocation can stay inside
  // the per-2-cycle slack on at least some seeds (docs/BYZ.md).
  static constexpr std::size_t kStrides[] = {1, 2, 3};
  std::vector<TopoArm> topologies;
  topologies.push_back({"complete 6", make_complete(6), 0.09, 13, 25});
  if (!quick)
    topologies.push_back(
        {"circulant 9", make_circulant(9, kStrides), 0.10, 11, 23});

  std::vector<EstArm> estimators;
  estimators.push_back({"naive", {}});
  {
    EstArm trimmed{"trimmed", {}};
    trimmed.robust.trim = true;
    trimmed.robust.trim_gate = 6.0;
    estimators.push_back(trimmed);
  }
  {
    EstArm quorum{"quorum", {}};
    quorum.robust.quorum = 3;
    quorum.robust.quorum_tolerance = 0.002;
    estimators.push_back(quorum);
  }

  const std::vector<std::size_t> liar_counts =
      quick ? std::vector<std::size_t>{0, 1}
            : std::vector<std::size_t>{0, 1, 2};

  Table table({"topology", "f", "estimator", "epochs", "det", "viol",
               "claimed", "realized", "qdrop", "sound"});
  BenchJson json("e18_byz");
  std::size_t silent_violations = 0;

  for (const TopoArm& t : topologies) {
    const SystemModel model = bounded_model(t.topo, kLb, kUb);
    const std::size_t n = model.processor_count();
    for (const std::size_t f : liar_counts) {
      for (const EstArm& est : estimators) {
        ByzTrialConfig config = base_config(t, n);
        config.robust = est.robust;
        config.plan.behavior =
            f == 0 ? Behavior::kHonest : Behavior::kEquivocate;
        config.plan.f = f;
        config.plan.magnitude = t.magnitude;
        config.plan.seed = 0xB12A;

        const auto t0 = SteadyClock::now();
        const ByzTrialResult r = run_byz_trial(model, config);
        const double trial_seconds = seconds_since(t0);
        if (!r.ok) throw Error("E18 " + t.name + ": " + r.failure);

        // Honesty tax: with no liars every variant must be fully clean.
        if (f == 0 && (r.detected_epochs != 0 || r.violations != 0 ||
                       r.thm46_gap > 1e-9))
          throw Error("E18 " + t.name + " f=0 " + est.name +
                      ": honest run not clean");
        // Quorum soundness: with f < n/3 the quorum arm may declare
        // outages (loud) but must never publish a bound the honest agents
        // exceed (silent).
        if (est.name == "quorum" && f > 0 && 3 * f < n && !r.sound)
          throw Error("E18 " + t.name + " f=" + std::to_string(f) +
                      " quorum: silent violation under f < n/3");
        if (est.name != "quorum" && f > 0) silent_violations += r.violations;

        json.scenario(t.name + "/f=" + std::to_string(f) + "/" + est.name)
            .field("topology", t.name)
            .field("nodes", n)
            .field("f", f)
            .field("estimator", est.name)
            .field("behavior", f == 0 ? "none" : "equivocate")
            .field("magnitude", f == 0 ? 0.0 : t.magnitude)
            .field("epochs", r.epochs)
            .field("detected_epochs", r.detected_epochs)
            .field("violations", r.violations)
            .field("sound", r.sound ? "true" : "false")
            .field("claimed_honest_max", r.claimed_honest_max)
            .field("realized_honest_max", r.realized_honest_max)
            .field("thm46_gap", r.thm46_gap)
            .field("lied_stamps", r.lied_stamps)
            .field("quorum_dropped_max", r.quorum_dropped_max)
            .field("delivered", r.delivered)
            .field("trial_seconds", trial_seconds);

        table.add_row({t.name, std::to_string(f), est.name,
                       std::to_string(r.epochs),
                       std::to_string(r.detected_epochs),
                       std::to_string(r.violations),
                       Table::num(r.claimed_honest_max, 6),
                       Table::num(r.realized_honest_max, 6),
                       std::to_string(r.quorum_dropped_max),
                       r.sound ? "yes" : "NO"});
      }
    }
  }

  // The demonstration the robust estimators exist for: somewhere in the
  // sweep, an unprotected arm must have been silently violated.
  if (silent_violations == 0)
    throw Error("E18: no unprotected arm was silently violated — the "
                "must-degrade demonstration is missing");
  std::cout << "silent violations (naive/trimmed): " << silent_violations
            << "\n";

  // Recovery: the attack ends at t = 16 and the horizon runs to 48, so
  // sliding windows shed the poisoned observations; count the epochs.
  {
    const TopoArm& t = topologies.front();
    const SystemModel model = bounded_model(t.topo, kLb, kUb);
    const std::size_t n = model.processor_count();
    Table rec_table({"estimator", "carry", "epochs", "det", "viol",
                     "recovered", "rec_epochs", "carried"});
    const std::vector<std::string> arms =
        quick ? std::vector<std::string>{"naive"}
              : std::vector<std::string>{"naive", "quorum", "carry+churn"};
    for (const std::string& arm : arms) {
      ByzTrialConfig config = base_config(t, n);
      config.horizon = 48.0;
      config.plan.behavior = Behavior::kEquivocate;
      config.plan.f = 1;
      config.plan.magnitude = t.magnitude;
      config.plan.seed = 0xB12A;
      config.plan.until = 16.0;
      if (arm == "quorum") {
        config.robust.quorum = 3;
        config.robust.quorum_tolerance = 0.002;
      }
      std::size_t carried_max = 0;
      if (arm == "carry+churn") {
        // Staleness carry only bites when an edge goes missing for a whole
        // estimation window, so this arm's churn holds links dark for 12 s
        // stretches (> the 8 s window): remembered m̃ls edges outlive
        // their window (possibly poisoned), recovery must stretch but stay
        // finite — carried edges age out at max_carry_epochs.
        config.staleness.carry_forward = true;
        config.staleness.widen_per_epoch = 0.002;
        config.staleness.max_carry_epochs = 2;
        config.churn.period = 16.0;
        config.churn.duty = 0.25;
        config.churn.links = 4;
      }

      const ByzTrialResult r = run_byz_trial(model, config);
      if (!r.ok) throw Error("E18 recovery " + arm + ": " + r.failure);
      if (!r.recovery_measured)
        throw Error("E18 recovery " + arm + ": attack window did not close");
      if (!r.recovered)
        throw Error("E18 recovery " + arm +
                    ": estimator never shed the poisoned state");
      for (const ByzEpochRow& row : r.rows)
        carried_max = std::max(carried_max, row.carried_edges);
      if (arm == "carry+churn" && carried_max == 0)
        throw Error("E18 recovery carry+churn: churn never forced a "
                    "carried edge — the staleness arm measured nothing");

      json.scenario("recovery/" + arm)
          .field("topology", t.name)
          .field("estimator", arm)
          .field("until", 16.0)
          .field("horizon", 48.0)
          .field("epochs", r.epochs)
          .field("detected_epochs", r.detected_epochs)
          .field("violations", r.violations)
          .field("recovered", r.recovered ? "true" : "false")
          .field("recovery_epochs", r.recovery_epochs)
          .field("carried_edges_max", carried_max);

      rec_table.add_row(
          {arm, config.staleness.carry_forward ? "yes" : "no",
           std::to_string(r.epochs), std::to_string(r.detected_epochs),
           std::to_string(r.violations), r.recovered ? "yes" : "NO",
           std::to_string(r.recovery_epochs), std::to_string(carried_max)});
    }
    std::cout << "recovery after a bounded attack (until = 16, horizon = "
                 "48):\n";
    rec_table.print(std::cout);
  }

  // Churn composition: half-duty link churn darkens the census while an
  // equivocator lies; the quorum arm must stay silent-violation free and
  // the boundary censuses must actually report absent directions.
  {
    const TopoArm& t = topologies.front();
    const SystemModel model = bounded_model(t.topo, kLb, kUb);
    const std::size_t n = model.processor_count();
    ByzTrialConfig config = base_config(t, n);
    config.plan.behavior = Behavior::kEquivocate;
    config.plan.f = 1;
    config.plan.magnitude = t.magnitude;
    config.plan.seed = 0xB12A;
    config.robust.quorum = 3;
    config.robust.quorum_tolerance = 0.002;
    config.churn.period = 8.0;
    config.churn.duty = 0.5;
    config.churn.links = 4;

    const ByzTrialResult r = run_byz_trial(model, config);
    if (!r.ok) throw Error("E18 churn: " + r.failure);
    if (!r.sound) throw Error("E18 churn: silent violation under quorum");
    std::size_t absent_max = 0;
    for (const ByzEpochRow& row : r.rows)
      absent_max = std::max(absent_max, row.absent_directions);
    if (absent_max == 0)
      throw Error("E18 churn: no boundary census saw an absent direction");

    json.scenario("churn/quorum")
        .field("topology", t.name)
        .field("churn_period", config.churn.period)
        .field("churn_duty", config.churn.duty)
        .field("churn_links", config.churn.links)
        .field("epochs", r.epochs)
        .field("detected_epochs", r.detected_epochs)
        .field("violations", r.violations)
        .field("absent_directions_max", absent_max)
        .field("dropped", r.dropped);
    std::cout << "churn composition: absent directions (max census) = "
              << absent_max << ", dropped = " << r.dropped << "\n";
  }

  table.print(std::cout);
  return json.write(json_path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_byz.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick")
      quick = true;
    else
      out = arg;
  }
  return run(quick, out);
}
