file(REMOVE_RECURSE
  "CMakeFiles/cs_baselines.dir/cristian.cpp.o"
  "CMakeFiles/cs_baselines.dir/cristian.cpp.o.d"
  "CMakeFiles/cs_baselines.dir/hmm.cpp.o"
  "CMakeFiles/cs_baselines.dir/hmm.cpp.o.d"
  "CMakeFiles/cs_baselines.dir/lundelius_lynch.cpp.o"
  "CMakeFiles/cs_baselines.dir/lundelius_lynch.cpp.o.d"
  "CMakeFiles/cs_baselines.dir/midpoint.cpp.o"
  "CMakeFiles/cs_baselines.dir/midpoint.cpp.o.d"
  "CMakeFiles/cs_baselines.dir/spanning_tree.cpp.o"
  "CMakeFiles/cs_baselines.dir/spanning_tree.cpp.o.d"
  "libcs_baselines.a"
  "libcs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
