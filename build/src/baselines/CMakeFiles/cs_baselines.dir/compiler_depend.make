# Empty compiler generated dependencies file for cs_baselines.
# This may be replaced when dependencies are built.
