
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cristian.cpp" "src/baselines/CMakeFiles/cs_baselines.dir/cristian.cpp.o" "gcc" "src/baselines/CMakeFiles/cs_baselines.dir/cristian.cpp.o.d"
  "/root/repo/src/baselines/hmm.cpp" "src/baselines/CMakeFiles/cs_baselines.dir/hmm.cpp.o" "gcc" "src/baselines/CMakeFiles/cs_baselines.dir/hmm.cpp.o.d"
  "/root/repo/src/baselines/lundelius_lynch.cpp" "src/baselines/CMakeFiles/cs_baselines.dir/lundelius_lynch.cpp.o" "gcc" "src/baselines/CMakeFiles/cs_baselines.dir/lundelius_lynch.cpp.o.d"
  "/root/repo/src/baselines/midpoint.cpp" "src/baselines/CMakeFiles/cs_baselines.dir/midpoint.cpp.o" "gcc" "src/baselines/CMakeFiles/cs_baselines.dir/midpoint.cpp.o.d"
  "/root/repo/src/baselines/spanning_tree.cpp" "src/baselines/CMakeFiles/cs_baselines.dir/spanning_tree.cpp.o" "gcc" "src/baselines/CMakeFiles/cs_baselines.dir/spanning_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
