
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/views_io.cpp" "src/io/CMakeFiles/cs_io.dir/views_io.cpp.o" "gcc" "src/io/CMakeFiles/cs_io.dir/views_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
