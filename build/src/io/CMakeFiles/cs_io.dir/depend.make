# Empty dependencies file for cs_io.
# This may be replaced when dependencies are built.
