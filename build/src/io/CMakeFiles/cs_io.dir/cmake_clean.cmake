file(REMOVE_RECURSE
  "CMakeFiles/cs_io.dir/views_io.cpp.o"
  "CMakeFiles/cs_io.dir/views_io.cpp.o.d"
  "libcs_io.a"
  "libcs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
