file(REMOVE_RECURSE
  "libcs_io.a"
)
