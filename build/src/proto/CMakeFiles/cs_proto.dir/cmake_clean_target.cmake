file(REMOVE_RECURSE
  "libcs_proto.a"
)
