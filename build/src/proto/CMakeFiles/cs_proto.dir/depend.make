# Empty dependencies file for cs_proto.
# This may be replaced when dependencies are built.
