
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/beacon.cpp" "src/proto/CMakeFiles/cs_proto.dir/beacon.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/beacon.cpp.o.d"
  "/root/repo/src/proto/coordinator.cpp" "src/proto/CMakeFiles/cs_proto.dir/coordinator.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/coordinator.cpp.o.d"
  "/root/repo/src/proto/flood.cpp" "src/proto/CMakeFiles/cs_proto.dir/flood.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/flood.cpp.o.d"
  "/root/repo/src/proto/gossip.cpp" "src/proto/CMakeFiles/cs_proto.dir/gossip.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/gossip.cpp.o.d"
  "/root/repo/src/proto/ping_pong.cpp" "src/proto/CMakeFiles/cs_proto.dir/ping_pong.cpp.o" "gcc" "src/proto/CMakeFiles/cs_proto.dir/ping_pong.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
