file(REMOVE_RECURSE
  "CMakeFiles/cs_proto.dir/beacon.cpp.o"
  "CMakeFiles/cs_proto.dir/beacon.cpp.o.d"
  "CMakeFiles/cs_proto.dir/coordinator.cpp.o"
  "CMakeFiles/cs_proto.dir/coordinator.cpp.o.d"
  "CMakeFiles/cs_proto.dir/flood.cpp.o"
  "CMakeFiles/cs_proto.dir/flood.cpp.o.d"
  "CMakeFiles/cs_proto.dir/gossip.cpp.o"
  "CMakeFiles/cs_proto.dir/gossip.cpp.o.d"
  "CMakeFiles/cs_proto.dir/ping_pong.cpp.o"
  "CMakeFiles/cs_proto.dir/ping_pong.cpp.o.d"
  "libcs_proto.a"
  "libcs_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
