file(REMOVE_RECURSE
  "CMakeFiles/cs_common.dir/extreal.cpp.o"
  "CMakeFiles/cs_common.dir/extreal.cpp.o.d"
  "CMakeFiles/cs_common.dir/rng.cpp.o"
  "CMakeFiles/cs_common.dir/rng.cpp.o.d"
  "CMakeFiles/cs_common.dir/stats.cpp.o"
  "CMakeFiles/cs_common.dir/stats.cpp.o.d"
  "CMakeFiles/cs_common.dir/table.cpp.o"
  "CMakeFiles/cs_common.dir/table.cpp.o.d"
  "libcs_common.a"
  "libcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
