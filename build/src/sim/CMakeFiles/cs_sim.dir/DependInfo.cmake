
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_sampler.cpp" "src/sim/CMakeFiles/cs_sim.dir/delay_sampler.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/delay_sampler.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/cs_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/cs_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/cs_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
