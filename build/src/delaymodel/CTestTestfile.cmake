# CMake generated Testfile for 
# Source directory: /root/repo/src/delaymodel
# Build directory: /root/repo/build/src/delaymodel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
