file(REMOVE_RECURSE
  "libcs_delaymodel.a"
)
