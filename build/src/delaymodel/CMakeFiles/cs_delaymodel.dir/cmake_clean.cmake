file(REMOVE_RECURSE
  "CMakeFiles/cs_delaymodel.dir/assignment.cpp.o"
  "CMakeFiles/cs_delaymodel.dir/assignment.cpp.o.d"
  "CMakeFiles/cs_delaymodel.dir/constraint.cpp.o"
  "CMakeFiles/cs_delaymodel.dir/constraint.cpp.o.d"
  "CMakeFiles/cs_delaymodel.dir/link_stats.cpp.o"
  "CMakeFiles/cs_delaymodel.dir/link_stats.cpp.o.d"
  "CMakeFiles/cs_delaymodel.dir/numeric_mls.cpp.o"
  "CMakeFiles/cs_delaymodel.dir/numeric_mls.cpp.o.d"
  "CMakeFiles/cs_delaymodel.dir/windowed_bias.cpp.o"
  "CMakeFiles/cs_delaymodel.dir/windowed_bias.cpp.o.d"
  "libcs_delaymodel.a"
  "libcs_delaymodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_delaymodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
