
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delaymodel/assignment.cpp" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/assignment.cpp.o" "gcc" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/assignment.cpp.o.d"
  "/root/repo/src/delaymodel/constraint.cpp" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/constraint.cpp.o" "gcc" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/constraint.cpp.o.d"
  "/root/repo/src/delaymodel/link_stats.cpp" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/link_stats.cpp.o" "gcc" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/link_stats.cpp.o.d"
  "/root/repo/src/delaymodel/numeric_mls.cpp" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/numeric_mls.cpp.o" "gcc" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/numeric_mls.cpp.o.d"
  "/root/repo/src/delaymodel/windowed_bias.cpp" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/windowed_bias.cpp.o" "gcc" "src/delaymodel/CMakeFiles/cs_delaymodel.dir/windowed_bias.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
