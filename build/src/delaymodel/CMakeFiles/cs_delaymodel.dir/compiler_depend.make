# Empty compiler generated dependencies file for cs_delaymodel.
# This may be replaced when dependencies are built.
