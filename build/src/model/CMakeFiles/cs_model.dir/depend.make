# Empty dependencies file for cs_model.
# This may be replaced when dependencies are built.
