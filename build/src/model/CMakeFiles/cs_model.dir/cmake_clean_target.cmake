file(REMOVE_RECURSE
  "libcs_model.a"
)
