file(REMOVE_RECURSE
  "CMakeFiles/cs_model.dir/execution.cpp.o"
  "CMakeFiles/cs_model.dir/execution.cpp.o.d"
  "CMakeFiles/cs_model.dir/history.cpp.o"
  "CMakeFiles/cs_model.dir/history.cpp.o.d"
  "CMakeFiles/cs_model.dir/pairing.cpp.o"
  "CMakeFiles/cs_model.dir/pairing.cpp.o.d"
  "CMakeFiles/cs_model.dir/view.cpp.o"
  "CMakeFiles/cs_model.dir/view.cpp.o.d"
  "libcs_model.a"
  "libcs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
