
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/cs_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/anchor.cpp" "src/core/CMakeFiles/cs_core.dir/anchor.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/anchor.cpp.o.d"
  "/root/repo/src/core/critical_cycle.cpp" "src/core/CMakeFiles/cs_core.dir/critical_cycle.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/critical_cycle.cpp.o.d"
  "/root/repo/src/core/epochs.cpp" "src/core/CMakeFiles/cs_core.dir/epochs.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/epochs.cpp.o.d"
  "/root/repo/src/core/global_estimates.cpp" "src/core/CMakeFiles/cs_core.dir/global_estimates.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/global_estimates.cpp.o.d"
  "/root/repo/src/core/local_estimates.cpp" "src/core/CMakeFiles/cs_core.dir/local_estimates.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/local_estimates.cpp.o.d"
  "/root/repo/src/core/precision.cpp" "src/core/CMakeFiles/cs_core.dir/precision.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/precision.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/cs_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/report.cpp.o.d"
  "/root/repo/src/core/shifts.cpp" "src/core/CMakeFiles/cs_core.dir/shifts.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/shifts.cpp.o.d"
  "/root/repo/src/core/synchronizer.cpp" "src/core/CMakeFiles/cs_core.dir/synchronizer.cpp.o" "gcc" "src/core/CMakeFiles/cs_core.dir/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
