file(REMOVE_RECURSE
  "CMakeFiles/cs_core.dir/adversary.cpp.o"
  "CMakeFiles/cs_core.dir/adversary.cpp.o.d"
  "CMakeFiles/cs_core.dir/anchor.cpp.o"
  "CMakeFiles/cs_core.dir/anchor.cpp.o.d"
  "CMakeFiles/cs_core.dir/critical_cycle.cpp.o"
  "CMakeFiles/cs_core.dir/critical_cycle.cpp.o.d"
  "CMakeFiles/cs_core.dir/epochs.cpp.o"
  "CMakeFiles/cs_core.dir/epochs.cpp.o.d"
  "CMakeFiles/cs_core.dir/global_estimates.cpp.o"
  "CMakeFiles/cs_core.dir/global_estimates.cpp.o.d"
  "CMakeFiles/cs_core.dir/local_estimates.cpp.o"
  "CMakeFiles/cs_core.dir/local_estimates.cpp.o.d"
  "CMakeFiles/cs_core.dir/precision.cpp.o"
  "CMakeFiles/cs_core.dir/precision.cpp.o.d"
  "CMakeFiles/cs_core.dir/report.cpp.o"
  "CMakeFiles/cs_core.dir/report.cpp.o.d"
  "CMakeFiles/cs_core.dir/shifts.cpp.o"
  "CMakeFiles/cs_core.dir/shifts.cpp.o.d"
  "CMakeFiles/cs_core.dir/synchronizer.cpp.o"
  "CMakeFiles/cs_core.dir/synchronizer.cpp.o.d"
  "libcs_core.a"
  "libcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
