file(REMOVE_RECURSE
  "libcs_graph.a"
)
