# Empty compiler generated dependencies file for cs_graph.
# This may be replaced when dependencies are built.
