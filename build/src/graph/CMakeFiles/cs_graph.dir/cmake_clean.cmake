file(REMOVE_RECURSE
  "CMakeFiles/cs_graph.dir/bellman_ford.cpp.o"
  "CMakeFiles/cs_graph.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/cs_graph.dir/cycle_mean.cpp.o"
  "CMakeFiles/cs_graph.dir/cycle_mean.cpp.o.d"
  "CMakeFiles/cs_graph.dir/digraph.cpp.o"
  "CMakeFiles/cs_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/cs_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/cs_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/cs_graph.dir/floyd_warshall.cpp.o"
  "CMakeFiles/cs_graph.dir/floyd_warshall.cpp.o.d"
  "CMakeFiles/cs_graph.dir/johnson.cpp.o"
  "CMakeFiles/cs_graph.dir/johnson.cpp.o.d"
  "CMakeFiles/cs_graph.dir/scc.cpp.o"
  "CMakeFiles/cs_graph.dir/scc.cpp.o.d"
  "CMakeFiles/cs_graph.dir/topology.cpp.o"
  "CMakeFiles/cs_graph.dir/topology.cpp.o.d"
  "libcs_graph.a"
  "libcs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
