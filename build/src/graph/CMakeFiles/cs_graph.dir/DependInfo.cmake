
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bellman_ford.cpp" "src/graph/CMakeFiles/cs_graph.dir/bellman_ford.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/graph/cycle_mean.cpp" "src/graph/CMakeFiles/cs_graph.dir/cycle_mean.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/cycle_mean.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/cs_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/cs_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/floyd_warshall.cpp" "src/graph/CMakeFiles/cs_graph.dir/floyd_warshall.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/floyd_warshall.cpp.o.d"
  "/root/repo/src/graph/johnson.cpp" "src/graph/CMakeFiles/cs_graph.dir/johnson.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/johnson.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/graph/CMakeFiles/cs_graph.dir/scc.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/scc.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "src/graph/CMakeFiles/cs_graph.dir/topology.cpp.o" "gcc" "src/graph/CMakeFiles/cs_graph.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
