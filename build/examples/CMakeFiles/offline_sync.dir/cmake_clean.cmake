file(REMOVE_RECURSE
  "CMakeFiles/offline_sync.dir/offline_sync.cpp.o"
  "CMakeFiles/offline_sync.dir/offline_sync.cpp.o.d"
  "offline_sync"
  "offline_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
