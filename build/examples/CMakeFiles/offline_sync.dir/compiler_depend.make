# Empty compiler generated dependencies file for offline_sync.
# This may be replaced when dependencies are built.
