# Empty compiler generated dependencies file for wan_mixed.
# This may be replaced when dependencies are built.
