file(REMOVE_RECURSE
  "CMakeFiles/wan_mixed.dir/wan_mixed.cpp.o"
  "CMakeFiles/wan_mixed.dir/wan_mixed.cpp.o.d"
  "wan_mixed"
  "wan_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
