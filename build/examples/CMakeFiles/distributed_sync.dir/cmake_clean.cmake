file(REMOVE_RECURSE
  "CMakeFiles/distributed_sync.dir/distributed_sync.cpp.o"
  "CMakeFiles/distributed_sync.dir/distributed_sync.cpp.o.d"
  "distributed_sync"
  "distributed_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
