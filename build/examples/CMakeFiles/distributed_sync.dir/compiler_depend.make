# Empty compiler generated dependencies file for distributed_sync.
# This may be replaced when dependencies are built.
