file(REMOVE_RECURSE
  "CMakeFiles/delaymodel_test.dir/delaymodel/assignment_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/assignment_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/bias_constraint_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/bias_constraint_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/bounds_constraint_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/bounds_constraint_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/composite_constraint_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/composite_constraint_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/link_stats_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/link_stats_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/numeric_mls_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/numeric_mls_test.cpp.o.d"
  "CMakeFiles/delaymodel_test.dir/delaymodel/windowed_bias_test.cpp.o"
  "CMakeFiles/delaymodel_test.dir/delaymodel/windowed_bias_test.cpp.o.d"
  "delaymodel_test"
  "delaymodel_test.pdb"
  "delaymodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delaymodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
