# Empty dependencies file for delaymodel_test.
# This may be replaced when dependencies are built.
