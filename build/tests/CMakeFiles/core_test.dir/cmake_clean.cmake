file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/adversary_test.cpp.o"
  "CMakeFiles/core_test.dir/core/adversary_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/anchor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/anchor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/critical_cycle_test.cpp.o"
  "CMakeFiles/core_test.dir/core/critical_cycle_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/epochs_test.cpp.o"
  "CMakeFiles/core_test.dir/core/epochs_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/optimality_property_test.cpp.o"
  "CMakeFiles/core_test.dir/core/optimality_property_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/precision_test.cpp.o"
  "CMakeFiles/core_test.dir/core/precision_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/shifts_test.cpp.o"
  "CMakeFiles/core_test.dir/core/shifts_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/windowed_pipeline_test.cpp.o"
  "CMakeFiles/core_test.dir/core/windowed_pipeline_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
