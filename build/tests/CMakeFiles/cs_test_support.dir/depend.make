# Empty dependencies file for cs_test_support.
# This may be replaced when dependencies are built.
