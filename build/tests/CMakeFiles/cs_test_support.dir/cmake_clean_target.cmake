file(REMOVE_RECURSE
  "libcs_test_support.a"
)
