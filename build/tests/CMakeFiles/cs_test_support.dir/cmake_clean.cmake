file(REMOVE_RECURSE
  "CMakeFiles/cs_test_support.dir/support/builders.cpp.o"
  "CMakeFiles/cs_test_support.dir/support/builders.cpp.o.d"
  "libcs_test_support.a"
  "libcs_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
