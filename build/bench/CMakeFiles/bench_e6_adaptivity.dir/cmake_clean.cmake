file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_adaptivity.dir/bench_e6_adaptivity.cpp.o"
  "CMakeFiles/bench_e6_adaptivity.dir/bench_e6_adaptivity.cpp.o.d"
  "bench_e6_adaptivity"
  "bench_e6_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
