# Empty dependencies file for bench_e6_adaptivity.
# This may be replaced when dependencies are built.
