# Empty dependencies file for bench_e3_bias.
# This may be replaced when dependencies are built.
