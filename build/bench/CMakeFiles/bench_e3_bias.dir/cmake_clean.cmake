file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_bias.dir/bench_e3_bias.cpp.o"
  "CMakeFiles/bench_e3_bias.dir/bench_e3_bias.cpp.o.d"
  "bench_e3_bias"
  "bench_e3_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
