# Empty dependencies file for bench_e4_mixed.
# This may be replaced when dependencies are built.
