file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_mixed.dir/bench_e4_mixed.cpp.o"
  "CMakeFiles/bench_e4_mixed.dir/bench_e4_mixed.cpp.o.d"
  "bench_e4_mixed"
  "bench_e4_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
