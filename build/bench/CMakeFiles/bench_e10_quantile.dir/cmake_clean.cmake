file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_quantile.dir/bench_e10_quantile.cpp.o"
  "CMakeFiles/bench_e10_quantile.dir/bench_e10_quantile.cpp.o.d"
  "bench_e10_quantile"
  "bench_e10_quantile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
