# Empty dependencies file for bench_e10_quantile.
# This may be replaced when dependencies are built.
