file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_optimality.dir/bench_e1_optimality.cpp.o"
  "CMakeFiles/bench_e1_optimality.dir/bench_e1_optimality.cpp.o.d"
  "bench_e1_optimality"
  "bench_e1_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
