
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e9_drift.cpp" "bench/CMakeFiles/bench_e9_drift.dir/bench_e9_drift.cpp.o" "gcc" "bench/CMakeFiles/bench_e9_drift.dir/bench_e9_drift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/cs_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/delaymodel/CMakeFiles/cs_delaymodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
