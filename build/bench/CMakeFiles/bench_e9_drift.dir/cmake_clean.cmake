file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_drift.dir/bench_e9_drift.cpp.o"
  "CMakeFiles/bench_e9_drift.dir/bench_e9_drift.cpp.o.d"
  "bench_e9_drift"
  "bench_e9_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
